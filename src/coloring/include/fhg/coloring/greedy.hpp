#pragma once

/// \file greedy.hpp
/// Sequential greedy coloring under pluggable vertex orderings, plus the
/// palette-restricted primitives shared by the §3 recoloring loop and the
/// §5 residue assignment.
///
/// Greedy facts the schedulers rely on:
///  * any greedy order yields `col(v) ≤ deg(v) + 1` — the paper's requirement
///    on the initial coloring (§3, §4 example 2);
///  * coloring along the reverse degeneracy order uses ≤ degeneracy+1 colors;
///  * on a bipartite graph, 2 colors suffice (the §1 intergroup-marriage
///    society), recovered here by BFS rather than greedy.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/coloring/coloring.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::coloring {

/// Vertex orderings for greedy coloring.
enum class Order : std::uint8_t {
  kIdentity,      ///< nodes 0..n-1 as given
  kRandom,        ///< uniform shuffle (seeded)
  kLargestFirst,  ///< decreasing degree (Welsh–Powell)
  kSmallestLast,  ///< reverse degeneracy order (Matula–Beck)
};

/// Human-readable ordering name.
[[nodiscard]] const char* order_name(Order order) noexcept;

/// Materializes the vertex ordering (seed only used for `kRandom`).
[[nodiscard]] std::vector<graph::NodeId> make_order(const graph::Graph& g, Order order,
                                                    std::uint64_t seed = 0);

/// Smallest color ≥ 1 not used by any neighbor of `v` under `coloring`.
[[nodiscard]] Color smallest_free_color(const graph::Graph& g, const Coloring& coloring,
                                        graph::NodeId v);

/// Smallest color strictly greater than `floor` not used by any neighbor —
/// the §3 recoloring step ("smallest number j > i such that none of v's
/// neighbors has color j"); always ≤ `floor + deg(v) + 1`.
[[nodiscard]] Color smallest_free_color_above(const graph::Graph& g, const Coloring& coloring,
                                              graph::NodeId v, Color floor);

/// Greedy coloring along `order` (which must be a permutation of the nodes).
/// Guarantees `col(v) ≤ deg(v) + 1` and properness.
[[nodiscard]] Coloring greedy_color(const graph::Graph& g, std::span<const graph::NodeId> order);

/// Convenience overload: builds the order then colors.
[[nodiscard]] Coloring greedy_color(const graph::Graph& g, Order order = Order::kLargestFirst,
                                    std::uint64_t seed = 0);

/// 2-coloring of a bipartite graph (colors 1 and 2), or `std::nullopt` if an
/// odd cycle exists.
[[nodiscard]] std::optional<Coloring> bipartite_color(const graph::Graph& g);

/// The trivial coloring of §4 example 1: node `v` gets color `v + 1`.
/// Proper for any graph; makes `mul(p)` depend on `|P|` — the anti-pattern
/// the paper's local bounds exist to avoid (E2/E11 baseline).
[[nodiscard]] Coloring sequential_color(const graph::Graph& g);

}  // namespace fhg::coloring
