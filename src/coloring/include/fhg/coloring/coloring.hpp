#pragma once

/// \file coloring.hpp
/// Proper vertex colorings of the conflict graph.
///
/// Colors are positive integers (`1, 2, 3, …`) exactly as in the paper —
/// a node's color is the label from which its holiday schedule is derived,
/// so the *value* of the color matters, not only the count.  `0` is the
/// "uncolored" sentinel used by in-progress distributed algorithms.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::coloring {

/// A color; `kUncolored` (0) marks not-yet-colored nodes.
using Color = std::uint32_t;
inline constexpr Color kUncolored = 0;

/// A (possibly partial) vertex coloring.
class Coloring {
 public:
  Coloring() = default;

  /// All-uncolored assignment for `n` nodes.
  explicit Coloring(graph::NodeId n) : colors_(n, kUncolored) {}

  /// Wraps an existing assignment.
  explicit Coloring(std::vector<Color> colors) : colors_(std::move(colors)) {}

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(colors_.size());
  }

  [[nodiscard]] Color color(graph::NodeId v) const noexcept { return colors_[v]; }

  void set_color(graph::NodeId v, Color c) noexcept { colors_[v] = c; }

  /// Grows (or shrinks) the assignment to `n` nodes; new nodes start
  /// uncolored.  Existing colors are preserved.
  void resize(graph::NodeId n) { colors_.resize(n, kUncolored); }

  [[nodiscard]] std::span<const Color> colors() const noexcept { return colors_; }

  /// Largest color used (0 if none).
  [[nodiscard]] Color max_color() const noexcept;

  /// Number of *distinct* colors used (ignoring uncolored nodes).
  [[nodiscard]] std::size_t distinct_colors() const;

  /// True iff every node is colored (no `kUncolored` left).
  [[nodiscard]] bool complete() const noexcept;

  /// True iff no edge of `g` joins two nodes of equal (non-zero) color and
  /// the assignment covers exactly `g.num_nodes()` nodes.
  [[nodiscard]] bool proper(const graph::Graph& g) const noexcept;

  /// True iff `color(v) <= g.degree(v) + 1` for every colored node — the
  /// property the paper requires of the initial (BEPS/Johansson/greedy)
  /// coloring so that color-derived waits are degree-local.
  [[nodiscard]] bool degree_bounded(const graph::Graph& g) const noexcept;

 private:
  std::vector<Color> colors_;
};

}  // namespace fhg::coloring
