#pragma once

/// \file dsatur.hpp
/// DSATUR (Brélaz 1979): greedy coloring that always colors the node of
/// highest *saturation* (number of distinct neighbor colors) next, breaking
/// ties by degree.  Exact on bipartite graphs and typically far below `Δ+1`
/// on sparse graphs — the "good coloring" feeding the §4 scheduler when the
/// chromatic number is small (the paper: "this algorithm works for any graph
/// coloring, including the (possibly difficult to obtain) optimal one").

#include "fhg/coloring/coloring.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::coloring {

/// DSATUR coloring. `O((n + m) log n)` with a lazy priority queue.
[[nodiscard]] Coloring dsatur_color(const graph::Graph& g);

}  // namespace fhg::coloring
