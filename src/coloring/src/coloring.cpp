#include "fhg/coloring/coloring.hpp"

#include <algorithm>
#include <unordered_set>

namespace fhg::coloring {

Color Coloring::max_color() const noexcept {
  Color best = 0;
  for (const Color c : colors_) {
    best = std::max(best, c);
  }
  return best;
}

std::size_t Coloring::distinct_colors() const {
  std::unordered_set<Color> seen;
  for (const Color c : colors_) {
    if (c != kUncolored) {
      seen.insert(c);
    }
  }
  return seen.size();
}

bool Coloring::complete() const noexcept {
  return std::none_of(colors_.begin(), colors_.end(),
                      [](Color c) { return c == kUncolored; });
}

bool Coloring::proper(const graph::Graph& g) const noexcept {
  if (num_nodes() != g.num_nodes()) {
    return false;
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    const Color cu = colors_[u];
    if (cu == kUncolored) {
      continue;
    }
    for (const graph::NodeId v : g.neighbors(u)) {
      if (colors_[v] == cu) {
        return false;
      }
    }
  }
  return true;
}

bool Coloring::degree_bounded(const graph::Graph& g) const noexcept {
  if (num_nodes() != g.num_nodes()) {
    return false;
  }
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (colors_[v] != kUncolored && colors_[v] > g.degree(v) + 1) {
      return false;
    }
  }
  return true;
}

}  // namespace fhg::coloring
