#include "fhg/coloring/dsatur.hpp"

#include <queue>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "fhg/coloring/greedy.hpp"

namespace fhg::coloring {

Coloring dsatur_color(const graph::Graph& g) {
  const graph::NodeId n = g.num_nodes();
  Coloring coloring(n);
  if (n == 0) {
    return coloring;
  }

  std::vector<std::unordered_set<Color>> neighbor_colors(n);
  // Max-heap keyed by (saturation, degree, node); entries go stale when a
  // node's saturation grows — detected by comparing against the live value.
  using Entry = std::tuple<std::uint32_t, std::uint32_t, graph::NodeId>;
  std::priority_queue<Entry> heap;
  for (graph::NodeId v = 0; v < n; ++v) {
    heap.emplace(0, g.degree(v), v);
  }

  graph::NodeId colored = 0;
  while (colored < n) {
    const auto [sat, deg, v] = heap.top();
    heap.pop();
    if (coloring.color(v) != kUncolored ||
        sat != static_cast<std::uint32_t>(neighbor_colors[v].size())) {
      continue;  // stale
    }
    coloring.set_color(v, smallest_free_color(g, coloring, v));
    ++colored;
    for (const graph::NodeId w : g.neighbors(v)) {
      if (coloring.color(w) == kUncolored &&
          neighbor_colors[w].insert(coloring.color(v)).second) {
        heap.emplace(static_cast<std::uint32_t>(neighbor_colors[w].size()), g.degree(w), w);
      }
    }
  }
  return coloring;
}

}  // namespace fhg::coloring
