#include "fhg/coloring/greedy.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fhg/graph/properties.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::coloring {

const char* order_name(Order order) noexcept {
  switch (order) {
    case Order::kIdentity:
      return "identity";
    case Order::kRandom:
      return "random";
    case Order::kLargestFirst:
      return "largest-first";
    case Order::kSmallestLast:
      return "smallest-last";
  }
  return "?";
}

std::vector<graph::NodeId> make_order(const graph::Graph& g, Order order, std::uint64_t seed) {
  const graph::NodeId n = g.num_nodes();
  std::vector<graph::NodeId> nodes(n);
  std::iota(nodes.begin(), nodes.end(), 0U);
  switch (order) {
    case Order::kIdentity:
      break;
    case Order::kRandom: {
      parallel::Rng rng(seed, /*stream=*/0x6F7264);
      rng.shuffle(nodes);
      break;
    }
    case Order::kLargestFirst:
      std::stable_sort(nodes.begin(), nodes.end(), [&g](graph::NodeId a, graph::NodeId b) {
        return g.degree(a) > g.degree(b);
      });
      break;
    case Order::kSmallestLast: {
      const auto degeneracy = graph::degeneracy_order(g);
      nodes.assign(degeneracy.order.rbegin(), degeneracy.order.rend());
      break;
    }
  }
  return nodes;
}

Color smallest_free_color(const graph::Graph& g, const Coloring& coloring, graph::NodeId v) {
  return smallest_free_color_above(g, coloring, v, 0);
}

Color smallest_free_color_above(const graph::Graph& g, const Coloring& coloring, graph::NodeId v,
                                Color floor) {
  // Mark which of floor+1 .. floor+deg+1 are taken; the pigeonhole principle
  // guarantees a free color in that window.
  const auto nbrs = g.neighbors(v);
  std::vector<bool> taken(nbrs.size() + 2, false);
  for (const graph::NodeId w : nbrs) {
    const Color c = coloring.color(w);
    if (c > floor && c <= floor + taken.size() - 1) {
      taken[c - floor] = true;
    }
  }
  for (Color offset = 1; offset < taken.size(); ++offset) {
    if (!taken[offset]) {
      return floor + offset;
    }
  }
  return floor + static_cast<Color>(taken.size());  // unreachable by pigeonhole
}

Coloring greedy_color(const graph::Graph& g, std::span<const graph::NodeId> order) {
  if (order.size() != g.num_nodes()) {
    throw std::invalid_argument("greedy_color: order must cover every node exactly once");
  }
  Coloring coloring(g.num_nodes());
  for (const graph::NodeId v : order) {
    coloring.set_color(v, smallest_free_color(g, coloring, v));
  }
  return coloring;
}

Coloring greedy_color(const graph::Graph& g, Order order, std::uint64_t seed) {
  const std::vector<graph::NodeId> nodes = make_order(g, order, seed);
  return greedy_color(g, nodes);
}

std::optional<Coloring> bipartite_color(const graph::Graph& g) {
  const auto sides = graph::bipartition(g);
  if (!sides) {
    return std::nullopt;
  }
  Coloring coloring(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    coloring.set_color(v, static_cast<Color>((*sides)[v] + 1));
  }
  return coloring;
}

Coloring sequential_color(const graph::Graph& g) {
  Coloring coloring(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    coloring.set_color(v, v + 1);
  }
  return coloring;
}

}  // namespace fhg::coloring
