#include "fhg/coloring/parallel_jp.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "fhg/parallel/parallel_for.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::coloring {

namespace {

/// Versioned mark buffer for the smallest-free scan: `marks_[c] == stamp_`
/// means color `c` is taken by a committed neighbor of the node currently
/// being scanned.  Bumping the stamp invalidates the whole buffer in O(1),
/// so one scan costs O(deg) with no clearing.  One buffer per worker thread
/// (thread_local), so concurrent proposals never share scratch state.
class FreeColorScratch {
 public:
  Color smallest_free(const graph::Graph& g, const Coloring& colors, graph::NodeId v) {
    const auto nbrs = g.neighbors(v);
    const std::size_t cap = nbrs.size() + 2;  // colors 1..deg+1 all representable
    if (marks_.size() < cap) {
      marks_.resize(cap, 0);
    }
    if (++stamp_ == 0) {  // stamp wrapped: old marks could alias, clear once
      std::fill(marks_.begin(), marks_.end(), 0);
      stamp_ = 1;
    }
    for (const graph::NodeId w : nbrs) {
      const Color c = colors.color(w);
      if (c >= 1 && c < cap) {
        marks_[c] = stamp_;
      }
    }
    for (Color c = 1; c < cap; ++c) {
      if (marks_[c] != stamp_) {
        return c;
      }
    }
    return static_cast<Color>(cap);  // unreachable: pigeonhole over deg+1 colors
  }

 private:
  std::vector<std::uint32_t> marks_;
  std::uint32_t stamp_ = 0;
};

thread_local FreeColorScratch t_scratch;

/// The resolve-phase total order: higher `(priority, id)` wins a color tie.
bool outranks(std::uint64_t seed, graph::NodeId a, graph::NodeId b) noexcept {
  const std::uint64_t pa = jp_priority(seed, a);
  const std::uint64_t pb = jp_priority(seed, b);
  return pa != pb ? pa > pb : a > b;
}

}  // namespace

std::uint64_t jp_priority(std::uint64_t seed, graph::NodeId v) noexcept {
  // Stream 'JP': one counter-based draw per node, nothing shared.
  return parallel::hash_draw(seed, 0x4A50, v);
}

void parallel_jp_recolor(const graph::Graph& g, Coloring& coloring,
                         std::span<const graph::NodeId> targets, const JpOptions& options,
                         JpStats* stats) {
  const graph::NodeId n = g.num_nodes();
  if (coloring.num_nodes() != n) {
    throw std::invalid_argument("parallel_jp_recolor: coloring covers " +
                                std::to_string(coloring.num_nodes()) + " nodes, graph has " +
                                std::to_string(n));
  }
  JpStats local;
  if (targets.empty()) {
    if (stats != nullptr) {
      *stats = local;
    }
    return;
  }

  std::vector<std::uint8_t> in_target(n, 0);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const graph::NodeId v = targets[i];
    if (v >= n) {
      throw std::invalid_argument("parallel_jp_recolor: target " + std::to_string(v) +
                                  " out of range (n=" + std::to_string(n) + ")");
    }
    if (i > 0 && targets[i - 1] >= v) {
      throw std::invalid_argument("parallel_jp_recolor: targets must be sorted and unique");
    }
    if (coloring.color(v) != kUncolored) {
      throw std::invalid_argument("parallel_jp_recolor: target " + std::to_string(v) +
                                  " is still colored; uncolor targets first");
    }
    in_target[v] = 1;
  }

  parallel::ThreadPool& pool =
      options.pool != nullptr ? *options.pool : parallel::ThreadPool::shared();
  const std::uint64_t seed = options.seed;
  const std::size_t chunk = options.chunk;

  std::vector<graph::NodeId> active(targets.begin(), targets.end());
  std::vector<Color> proposal(n, kUncolored);
  std::vector<std::uint8_t> win;

  while (!active.empty()) {
    ++local.rounds;
    // Phase 1 — propose: smallest color free among *committed* neighbors.
    // Reads colors, writes only proposal[v] for distinct v; the barrier at
    // the end of the parallel_for separates it from the commit writes below.
    parallel::parallel_for_dynamic(
        pool, 0, active.size(),
        [&](std::size_t i) {
          const graph::NodeId v = active[i];
          proposal[v] = t_scratch.smallest_free(g, coloring, v);
        },
        chunk);

    // Phase 2 — resolve: v wins unless a still-active neighbor proposed the
    // same color and outranks it.  Pure reads of proposal/colors; writes
    // only win[i].
    win.assign(active.size(), 0);
    parallel::parallel_for_dynamic(
        pool, 0, active.size(),
        [&](std::size_t i) {
          const graph::NodeId v = active[i];
          const Color mine = proposal[v];
          for (const graph::NodeId w : g.neighbors(v)) {
            if (in_target[w] != 0 && coloring.color(w) == kUncolored && proposal[w] == mine &&
                outranks(seed, w, v)) {
              return;  // w takes this color this round; v retries next round
            }
          }
          win[i] = 1;
        },
        chunk);

    // Phase 3 — commit winners (writes colors of distinct nodes), then
    // compact the losers into the next round's active set, in order, so the
    // array stays sorted and every round's input is deterministic.
    parallel::parallel_for_dynamic(
        pool, 0, active.size(),
        [&](std::size_t i) {
          if (win[i] != 0) {
            coloring.set_color(active[i], proposal[active[i]]);
          }
        },
        chunk);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < active.size(); ++i) {
      if (win[i] == 0) {
        active[kept++] = active[i];
      }
    }
    local.conflicts += kept;
    local.colored += active.size() - kept;
    active.resize(kept);
  }

  if (stats != nullptr) {
    *stats = local;
  }
}

Coloring parallel_jp_color(const graph::Graph& g, const JpOptions& options, JpStats* stats) {
  Coloring coloring(g.num_nodes());
  std::vector<graph::NodeId> targets(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    targets[v] = v;
  }
  parallel_jp_recolor(g, coloring, targets, options, stats);
  return coloring;
}

}  // namespace fhg::coloring
