#include "fhg/dynamic/adapter.hpp"

#include <stdexcept>
#include <string>

namespace fhg::dynamic {

DynamicSchedulerAdapter::DynamicSchedulerAdapter(const graph::Graph& initial,
                                                 coding::CodeFamily family,
                                                 std::uint32_t deletion_slack)
    : dynamic_(initial),
      scheduler_(dynamic_, family, deletion_slack),
      current_(initial) {}

std::vector<core::PeriodPhaseRow> DynamicSchedulerAdapter::period_phase_rows() const {
  std::vector<core::PeriodPhaseRow> rows(current_.num_nodes());
  for (graph::NodeId v = 0; v < current_.num_nodes(); ++v) {
    const coding::ScheduleSlot slot = scheduler_.slot_of(v);
    rows[v] = {slot.period(), slot.first_holiday()};
  }
  return rows;
}

ApplyResult DynamicSchedulerAdapter::apply_one(const MutationCommand& cmd) {
  ApplyResult result;
  switch (cmd.op) {
    case MutationOp::kInsertEdge:
      if (!dynamic_.has_edge(cmd.u, cmd.v)) {
        // insert_edge validates endpoints (throws on self-loop / range).
        result.recolor = scheduler_.insert_edge(cmd.u, cmd.v);
        result.applied = true;
      }
      return result;
    case MutationOp::kEraseEdge:
      if (cmd.u >= dynamic_.num_nodes() || cmd.v >= dynamic_.num_nodes() || cmd.u == cmd.v) {
        throw std::invalid_argument("DynamicSchedulerAdapter: bad erase_edge endpoints " +
                                    std::to_string(cmd.u) + "-" + std::to_string(cmd.v));
      }
      if (dynamic_.has_edge(cmd.u, cmd.v)) {
        result.recolor = scheduler_.erase_edge(cmd.u, cmd.v);
        result.applied = true;
      }
      return result;
    case MutationOp::kAddNode:
      (void)scheduler_.add_node();
      result.applied = true;
      return result;
  }
  throw std::invalid_argument("DynamicSchedulerAdapter: unknown mutation op");
}

ApplyResult DynamicSchedulerAdapter::apply(MutationCommand cmd, bool restamp) {
  if (restamp) {
    cmd.holiday = scheduler_.current_holiday();
  }
  const ApplyResult result = apply_one(cmd);
  if (result.applied) {
    log_.push_back(cmd);
    ++version_;
    current_ = dynamic_.snapshot();
  }
  return result;
}

void DynamicSchedulerAdapter::validate(std::span<const MutationCommand> commands) const {
  // Track the node count across the batch so an add_node legitimately widens
  // the range for later commands.
  std::uint64_t n = dynamic_.num_nodes();
  for (const MutationCommand& cmd : commands) {
    switch (cmd.op) {
      case MutationOp::kInsertEdge:
      case MutationOp::kEraseEdge:
        if (cmd.u >= n || cmd.v >= n || cmd.u == cmd.v) {
          throw std::invalid_argument("DynamicSchedulerAdapter: bad edge endpoints " +
                                      std::to_string(cmd.u) + "-" + std::to_string(cmd.v) +
                                      " (n=" + std::to_string(n) + ")");
        }
        break;
      case MutationOp::kAddNode:
        ++n;
        break;
    }
  }
}

std::size_t DynamicSchedulerAdapter::apply_batch(std::span<const MutationCommand> commands) {
  // Validate up front so a malformed command cannot leave a half-applied
  // batch: after this, no apply_one call below can throw.
  validate(commands);
  std::size_t applied = 0;
  const std::uint64_t now = scheduler_.current_holiday();
  for (MutationCommand cmd : commands) {
    cmd.holiday = now;
    const ApplyResult result = apply_one(cmd);
    if (result.applied) {
      log_.push_back(cmd);
      ++version_;
      ++applied;
    }
  }
  if (applied > 0) {
    current_ = dynamic_.snapshot();
  }
  return applied;
}

void DynamicSchedulerAdapter::replay_log(std::span<const MutationCommand> log) {
  validate(log);
  for (const MutationCommand& cmd : log) {
    // Land each command at its persisted holiday: the happy sets in between
    // are pure functions of the slots, so an O(1) counter skip is exact.
    scheduler_.skip_to(cmd.holiday);
    const ApplyResult result = apply_one(cmd);
    if (result.applied) {
      log_.push_back(cmd);
      ++version_;
    }
  }
  // One CSR refresh for the whole log, not one per command.
  current_ = dynamic_.snapshot();
}

}  // namespace fhg::dynamic
