#include "fhg/dynamic/adapter.hpp"

#include <stdexcept>
#include <string>

namespace fhg::dynamic {

DynamicSchedulerAdapter::DynamicSchedulerAdapter(const graph::Graph& initial,
                                                 coding::CodeFamily family,
                                                 std::uint32_t deletion_slack)
    : dynamic_(initial),
      scheduler_(dynamic_, family, deletion_slack),
      current_(initial) {}

DynamicSchedulerAdapter::DynamicSchedulerAdapter(const graph::Graph& initial,
                                                 const DynamicOptions& options)
    : dynamic_(initial),
      scheduler_(dynamic_, options.family, options.deletion_slack, options.parallel_crossover,
                 options.jp_seed),
      bulk_threshold_(options.bulk_threshold),
      current_(initial) {}

std::vector<core::PeriodPhaseRow> DynamicSchedulerAdapter::period_phase_rows() const {
  std::vector<core::PeriodPhaseRow> rows(current_.num_nodes());
  for (graph::NodeId v = 0; v < current_.num_nodes(); ++v) {
    const coding::ScheduleSlot slot = scheduler_.slot_of(v);
    rows[v] = {slot.period(), slot.first_holiday()};
  }
  return rows;
}

ApplyResult DynamicSchedulerAdapter::apply_one(const MutationCommand& cmd) {
  ApplyResult result;
  switch (cmd.op) {
    case MutationOp::kInsertEdge:
      if (!dynamic_.has_edge(cmd.u, cmd.v)) {
        // insert_edge validates endpoints (throws on self-loop / range).
        result.recolor = scheduler_.insert_edge(cmd.u, cmd.v);
        result.applied = true;
      }
      return result;
    case MutationOp::kEraseEdge:
      if (cmd.u >= dynamic_.num_nodes() || cmd.v >= dynamic_.num_nodes() || cmd.u == cmd.v) {
        throw std::invalid_argument("DynamicSchedulerAdapter: bad erase_edge endpoints " +
                                    std::to_string(cmd.u) + "-" + std::to_string(cmd.v));
      }
      if (dynamic_.has_edge(cmd.u, cmd.v)) {
        result.recolor = scheduler_.erase_edge(cmd.u, cmd.v);
        result.applied = true;
      }
      return result;
    case MutationOp::kAddNode:
      (void)scheduler_.add_node();
      result.applied = true;
      return result;
  }
  throw std::invalid_argument("DynamicSchedulerAdapter: unknown mutation op");
}

ApplyResult DynamicSchedulerAdapter::apply(MutationCommand cmd, bool restamp) {
  if (restamp) {
    cmd.holiday = scheduler_.current_holiday();
  }
  const ApplyResult result = apply_one(cmd);
  if (result.applied) {
    log_.push_back(cmd);
    batches_.push_back({1, false});
    ++version_;
    current_ = dynamic_.snapshot();
  }
  return result;
}

void DynamicSchedulerAdapter::validate(std::span<const MutationCommand> commands) const {
  // Track the node count across the batch so an add_node legitimately widens
  // the range for later commands.
  std::uint64_t n = dynamic_.num_nodes();
  for (const MutationCommand& cmd : commands) {
    switch (cmd.op) {
      case MutationOp::kInsertEdge:
      case MutationOp::kEraseEdge:
        if (cmd.u >= n || cmd.v >= n || cmd.u == cmd.v) {
          throw std::invalid_argument("DynamicSchedulerAdapter: bad edge endpoints " +
                                      std::to_string(cmd.u) + "-" + std::to_string(cmd.v) +
                                      " (n=" + std::to_string(n) + ")");
        }
        break;
      case MutationOp::kAddNode:
        ++n;
        break;
    }
  }
}

BatchResult DynamicSchedulerAdapter::apply_bulk(std::span<const MutationCommand> commands,
                                                bool restamp) {
  BatchResult result;
  result.bulk = true;
  const std::uint64_t now = scheduler_.current_holiday();
  BulkOutcome outcome = scheduler_.bulk_apply(commands);
  result.jp = outcome.jp;
  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (outcome.applied[i] == 0) {
      continue;
    }
    MutationCommand cmd = commands[i];
    if (restamp) {
      cmd.holiday = now;
    }
    log_.push_back(cmd);
    ++version_;
    ++result.applied;
  }
  if (result.applied > 0) {
    batches_.push_back({static_cast<std::uint32_t>(result.applied), true});
    current_ = std::move(outcome.topology);
  }
  return result;
}

BatchResult DynamicSchedulerAdapter::apply_batch(std::span<const MutationCommand> commands) {
  // Validate up front so a malformed command cannot leave a half-applied
  // batch: after this, nothing below can throw.
  validate(commands);
  if (bulk_threshold_ > 0 && commands.size() >= bulk_threshold_) {
    return apply_bulk(commands, /*restamp=*/true);
  }
  BatchResult result;
  const std::uint64_t now = scheduler_.current_holiday();
  for (MutationCommand cmd : commands) {
    cmd.holiday = now;
    if (apply_one(cmd).applied) {
      log_.push_back(cmd);
      ++version_;
      ++result.applied;
    }
  }
  if (result.applied > 0) {
    batches_.push_back({static_cast<std::uint32_t>(result.applied), false});
    current_ = dynamic_.snapshot();
  }
  return result;
}

void DynamicSchedulerAdapter::replay_log(std::span<const MutationCommand> log,
                                         std::span<const BatchRecord> records) {
  validate(log);
  std::size_t total = 0;
  for (const BatchRecord& record : records) {
    total += record.size;
  }
  if (!records.empty() && total != log.size()) {
    throw std::invalid_argument("DynamicSchedulerAdapter: batch records cover " +
                                std::to_string(total) + " commands, log has " +
                                std::to_string(log.size()));
  }
  std::size_t offset = 0;
  const auto replay_segment = [this, log](std::size_t lo, std::size_t size, bool bulk) {
    const auto segment = log.subspan(lo, size);
    if (bulk) {
      // The whole batch landed at one holiday on the live path; land there
      // first, then re-run the identical bulk policy with stamps kept.
      scheduler_.skip_to(segment.front().holiday);
      (void)apply_bulk(segment, /*restamp=*/false);
      return;
    }
    for (const MutationCommand& cmd : segment) {
      // Land each command at its persisted holiday: the happy sets in
      // between are pure functions of the slots, so an O(1) skip is exact.
      scheduler_.skip_to(cmd.holiday);
      if (apply_one(cmd).applied) {
        log_.push_back(cmd);
        ++version_;
      }
    }
    batches_.push_back({static_cast<std::uint32_t>(size), false});
  };
  if (records.empty()) {
    // Pre-segmentation logs (snapshot v2): every command was logged from
    // the per-command path, one batch each.
    for (std::size_t i = 0; i < log.size(); ++i) {
      replay_segment(i, 1, false);
    }
  } else {
    for (const BatchRecord& record : records) {
      replay_segment(offset, record.size, record.bulk);
      offset += record.size;
    }
  }
  // One CSR refresh for the whole log, not one per command.
  current_ = dynamic_.snapshot();
}

BatchResult DynamicSchedulerAdapter::replay_batch(std::span<const MutationCommand> commands,
                                                  BatchRecord record) {
  if (record.size != commands.size()) {
    throw std::invalid_argument("DynamicSchedulerAdapter: replay record covers " +
                                std::to_string(record.size) + " commands, segment has " +
                                std::to_string(commands.size()));
  }
  validate(commands);
  BatchResult result;
  if (record.bulk) {
    if (commands.empty()) {
      throw std::invalid_argument("DynamicSchedulerAdapter: empty bulk replay batch");
    }
    // Land at the batch's holiday, then re-run the identical bulk policy
    // with the persisted stamps kept (mirrors replay_log's bulk segment).
    scheduler_.skip_to(commands.front().holiday);
    result = apply_bulk(commands, /*restamp=*/false);
  } else {
    for (const MutationCommand& cmd : commands) {
      scheduler_.skip_to(cmd.holiday);
      if (apply_one(cmd).applied) {
        log_.push_back(cmd);
        ++version_;
        ++result.applied;
      }
    }
    if (result.applied > 0) {
      batches_.push_back({static_cast<std::uint32_t>(result.applied), false});
      current_ = dynamic_.snapshot();
    }
  }
  // Every logged command applied once on the live path and must apply again:
  // replay is deterministic over identical state, so a shortfall means the
  // log and the restored state have diverged.
  if (result.applied != commands.size()) {
    throw std::runtime_error("DynamicSchedulerAdapter: replay batch applied " +
                             std::to_string(result.applied) + " of " +
                             std::to_string(commands.size()) + " commands (state diverged)");
  }
  return result;
}

}  // namespace fhg::dynamic
