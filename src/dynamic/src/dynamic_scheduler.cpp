#include "fhg/dynamic/dynamic_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace fhg::dynamic {

namespace {

/// Smallest color ≥ 1 unused among `v`'s neighbors in the dynamic graph.
coloring::Color smallest_free(const graph::DynamicGraph& g, const coloring::Coloring& colors,
                              graph::NodeId v) {
  const auto nbrs = g.neighbors(v);
  std::vector<bool> taken(nbrs.size() + 2, false);
  for (const graph::NodeId w : nbrs) {
    const coloring::Color c = colors.color(w);
    if (c >= 1 && c < taken.size()) {
      taken[c] = true;
    }
  }
  for (coloring::Color c = 1; c < taken.size(); ++c) {
    if (!taken[c]) {
      return c;
    }
  }
  return static_cast<coloring::Color>(taken.size());  // unreachable (pigeonhole)
}

}  // namespace

DynamicPrefixCodeScheduler::DynamicPrefixCodeScheduler(graph::DynamicGraph& g,
                                                       coding::CodeFamily family,
                                                       std::uint32_t deletion_slack)
    : graph_(&g), family_(family), deletion_slack_(deletion_slack), colors_(g.num_nodes()) {
  // Greedy initial coloring in decreasing-degree order: col ≤ deg+1.
  std::vector<graph::NodeId> order(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    order[v] = v;
  }
  std::stable_sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  for (const graph::NodeId v : order) {
    colors_.set_color(v, smallest_free(g, colors_, v));
  }
  slots_.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    refresh_slot(v);
  }
}

void DynamicPrefixCodeScheduler::refresh_slot(graph::NodeId v) {
  slots_[v] = coding::slot_of(coding::encode(family_, colors_.color(v)));
}

std::vector<graph::NodeId> DynamicPrefixCodeScheduler::next_holiday() {
  ++holiday_;
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (slots_[v].matches(holiday_)) {
      happy.push_back(v);
    }
  }
  return happy;
}

RecolorEvent DynamicPrefixCodeScheduler::recolor(graph::NodeId v, bool due_to_insertion) {
  RecolorEvent event;
  event.holiday = holiday_;
  event.node = v;
  event.old_color = colors_.color(v);
  colors_.set_color(v, smallest_free(*graph_, colors_, v));
  event.new_color = colors_.color(v);
  event.due_to_insertion = due_to_insertion;
  refresh_slot(v);
  history_.push_back(event);
  return event;
}

std::optional<RecolorEvent> DynamicPrefixCodeScheduler::insert_edge(graph::NodeId u,
                                                                    graph::NodeId v) {
  if (!graph_->insert_edge(u, v)) {
    return std::nullopt;  // already married
  }
  if (colors_.color(u) != colors_.color(v)) {
    return std::nullopt;  // still proper; schedules unchanged
  }
  // The lower-degree endpoint recolors — its relative schedule loss is
  // smaller (§6 leaves the choice free; degree is the natural tie-breaker).
  const graph::NodeId loser = graph_->degree(u) <= graph_->degree(v) ? u : v;
  return recolor(loser, /*due_to_insertion=*/true);
}

std::optional<RecolorEvent> DynamicPrefixCodeScheduler::erase_edge(graph::NodeId u,
                                                                   graph::NodeId v) {
  if (!graph_->erase_edge(u, v)) {
    return std::nullopt;
  }
  // Rate repair: if some endpoint's color now exceeds deg+1+slack, its
  // hosting rate is disproportionately low for its new degree — recolor it.
  for (const graph::NodeId p : {u, v}) {
    if (colors_.color(p) > graph_->degree(p) + 1 + deletion_slack_) {
      return recolor(p, /*due_to_insertion=*/false);
    }
  }
  return std::nullopt;
}

graph::NodeId DynamicPrefixCodeScheduler::add_node() {
  const graph::NodeId v = graph_->add_node();
  coloring::Coloring grown(graph_->num_nodes());
  for (graph::NodeId w = 0; w + 1 < graph_->num_nodes(); ++w) {
    grown.set_color(w, colors_.color(w));
  }
  grown.set_color(v, 1);  // isolated: color 1, happy every 2^|K(1)| holidays
  colors_ = std::move(grown);
  slots_.emplace_back();
  refresh_slot(v);
  return v;
}

bool DynamicPrefixCodeScheduler::coloring_proper() const {
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    for (const graph::NodeId w : graph_->neighbors(v)) {
      if (colors_.color(v) == colors_.color(w)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fhg::dynamic
