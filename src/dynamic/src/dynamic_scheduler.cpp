#include "fhg/dynamic/dynamic_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

namespace fhg::dynamic {

namespace {

/// Smallest color ≥ 1 unused among `v`'s neighbors in the dynamic graph.
coloring::Color smallest_free(const graph::DynamicGraph& g, const coloring::Coloring& colors,
                              graph::NodeId v) {
  const auto nbrs = g.neighbors(v);
  std::vector<bool> taken(nbrs.size() + 2, false);
  for (const graph::NodeId w : nbrs) {
    const coloring::Color c = colors.color(w);
    if (c >= 1 && c < taken.size()) {
      taken[c] = true;
    }
  }
  for (coloring::Color c = 1; c < taken.size(); ++c) {
    if (!taken[c]) {
      return c;
    }
  }
  return static_cast<coloring::Color>(taken.size());  // unreachable (pigeonhole)
}

}  // namespace

DynamicPrefixCodeScheduler::DynamicPrefixCodeScheduler(graph::DynamicGraph& g,
                                                       coding::CodeFamily family,
                                                       std::uint32_t deletion_slack,
                                                       std::uint32_t parallel_crossover,
                                                       std::uint64_t jp_seed)
    : graph_(&g),
      family_(family),
      deletion_slack_(deletion_slack),
      parallel_crossover_(parallel_crossover),
      jp_seed_(jp_seed),
      colors_(g.num_nodes()) {
  if (parallel_crossover_ > 0 && g.num_nodes() >= parallel_crossover_) {
    // Above the crossover: the parallel Jones–Plassmann pass.  Also
    // col ≤ deg+1, also deterministic (thread-count-independent), so the
    // replay/snapshot invariants hold the same way.
    coloring::JpOptions options;
    options.seed = jp_seed_;
    colors_ = coloring::parallel_jp_color(g.snapshot(), options, &build_stats_);
    built_parallel_ = true;
  } else {
    // Greedy initial coloring in decreasing-degree order: col ≤ deg+1.
    std::vector<graph::NodeId> order(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      order[v] = v;
    }
    std::stable_sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
      return g.degree(a) > g.degree(b);
    });
    for (const graph::NodeId v : order) {
      colors_.set_color(v, smallest_free(g, colors_, v));
    }
  }
  slots_.resize(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    refresh_slot(v);
  }
}

void DynamicPrefixCodeScheduler::refresh_slot(graph::NodeId v) {
  slots_[v] = coding::slot_of(coding::encode(family_, colors_.color(v)));
}

std::vector<graph::NodeId> DynamicPrefixCodeScheduler::next_holiday() {
  ++holiday_;
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (slots_[v].matches(holiday_)) {
      happy.push_back(v);
    }
  }
  return happy;
}

RecolorEvent DynamicPrefixCodeScheduler::recolor(graph::NodeId v, bool due_to_insertion) {
  RecolorEvent event;
  event.holiday = holiday_;
  event.node = v;
  event.old_color = colors_.color(v);
  colors_.set_color(v, smallest_free(*graph_, colors_, v));
  event.new_color = colors_.color(v);
  event.due_to_insertion = due_to_insertion;
  refresh_slot(v);
  history_.push_back(event);
  return event;
}

std::optional<RecolorEvent> DynamicPrefixCodeScheduler::insert_edge(graph::NodeId u,
                                                                    graph::NodeId v) {
  if (!graph_->insert_edge(u, v)) {
    return std::nullopt;  // already married
  }
  if (colors_.color(u) != colors_.color(v)) {
    return std::nullopt;  // still proper; schedules unchanged
  }
  // The lower-degree endpoint recolors — its relative schedule loss is
  // smaller (§6 leaves the choice free; degree is the natural tie-breaker).
  const graph::NodeId loser = graph_->degree(u) <= graph_->degree(v) ? u : v;
  return recolor(loser, /*due_to_insertion=*/true);
}

std::optional<RecolorEvent> DynamicPrefixCodeScheduler::erase_edge(graph::NodeId u,
                                                                   graph::NodeId v) {
  if (!graph_->erase_edge(u, v)) {
    return std::nullopt;
  }
  // Rate repair: if some endpoint's color now exceeds deg+1+slack, its
  // hosting rate is disproportionately low for its new degree — recolor it.
  for (const graph::NodeId p : {u, v}) {
    if (colors_.color(p) > graph_->degree(p) + 1 + deletion_slack_) {
      return recolor(p, /*due_to_insertion=*/false);
    }
  }
  return std::nullopt;
}

graph::NodeId DynamicPrefixCodeScheduler::add_node() {
  const graph::NodeId v = graph_->add_node();
  colors_.resize(graph_->num_nodes());
  colors_.set_color(v, 1);  // isolated: color 1, happy every 2^|K(1)| holidays
  slots_.emplace_back();
  refresh_slot(v);
  return v;
}

BulkOutcome DynamicPrefixCodeScheduler::bulk_apply(std::span<const MutationCommand> commands) {
  BulkOutcome out;
  out.applied.assign(commands.size(), 0);
  const graph::NodeId old_n = graph_->num_nodes();

  // Phase 1 — topology only.  Every command lands before any recoloring, so
  // the repair below sees the batch's *final* shape (a node inserted against
  // and divorced within one batch never recolors at all).
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const MutationCommand& cmd = commands[i];
    switch (cmd.op) {
      case MutationOp::kInsertEdge:
        out.applied[i] = graph_->insert_edge(cmd.u, cmd.v) ? 1 : 0;
        break;
      case MutationOp::kEraseEdge:
        out.applied[i] = graph_->erase_edge(cmd.u, cmd.v) ? 1 : 0;
        break;
      case MutationOp::kAddNode:
        (void)graph_->add_node();
        out.applied[i] = 1;
        break;
    }
  }
  const graph::NodeId n = graph_->num_nodes();
  colors_.resize(n);
  slots_.resize(n);

  // Phase 2 — the affected set, in command order (deterministic).  Cause
  // codes: 1 = insertion conflict loser, 2 = post-erasure rate repair,
  // 3 = newly added node (no history event — it never had a color).
  std::vector<std::uint8_t> cause(n, 0);
  std::vector<coloring::Color> old_color(n, coloring::kUncolored);
  for (graph::NodeId v = old_n; v < n; ++v) {
    cause[v] = 3;
  }
  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (out.applied[i] == 0 || commands[i].op != MutationOp::kInsertEdge) {
      continue;
    }
    const graph::NodeId u = commands[i].u;
    const graph::NodeId v = commands[i].v;
    const coloring::Color cu = colors_.color(u);
    const coloring::Color cv = colors_.color(v);
    if (cu == coloring::kUncolored || cu != cv || !graph_->has_edge(u, v)) {
      continue;  // no live conflict (other endpoint already queued, or divorced again)
    }
    // Same tie-breaker as the per-command path: the lower-degree endpoint
    // recolors (degrees of the batch-final topology).
    const graph::NodeId loser = graph_->degree(u) <= graph_->degree(v) ? u : v;
    cause[loser] = 1;
    old_color[loser] = colors_.color(loser);
    colors_.set_color(loser, coloring::kUncolored);
  }
  for (std::size_t i = 0; i < commands.size(); ++i) {
    if (out.applied[i] == 0 || commands[i].op != MutationOp::kEraseEdge) {
      continue;
    }
    for (const graph::NodeId p : {commands[i].u, commands[i].v}) {
      if (cause[p] == 0 &&
          colors_.color(p) > graph_->degree(p) + 1 + deletion_slack_) {
        cause[p] = 2;
        old_color[p] = colors_.color(p);
        colors_.set_color(p, coloring::kUncolored);
      }
    }
  }
  std::vector<graph::NodeId> targets;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (cause[v] != 0) {
      targets.push_back(v);
    }
  }

  // Phase 3 — one parallel repair pass against the fixed boundary colors,
  // then slots and history in ascending node order.
  out.topology = graph_->snapshot();
  coloring::JpOptions options;
  options.seed = jp_seed_;
  coloring::parallel_jp_recolor(out.topology, colors_, targets, options, &out.jp);
  for (const graph::NodeId v : targets) {
    refresh_slot(v);
    if (cause[v] == 3) {
      continue;
    }
    RecolorEvent event;
    event.holiday = holiday_;
    event.node = v;
    event.old_color = old_color[v];
    event.new_color = colors_.color(v);
    event.due_to_insertion = cause[v] == 1;
    history_.push_back(event);
    ++out.recolored;
  }
  return out;
}

bool DynamicPrefixCodeScheduler::coloring_proper() const {
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    for (const graph::NodeId w : graph_->neighbors(v)) {
      if (colors_.color(v) == colors_.color(w)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fhg::dynamic
