#pragma once

/// \file dynamic_scheduler.hpp
/// The dynamic setting of Section 6: relationships form and dissolve while
/// the holidays keep coming.
///
/// The color-bound scheduler of §4 adapts gracefully — that is the paper's
/// point.  On an edge insertion `{p, q}` with `col(p) == col(q)`, the
/// lower-degree endpoint recolors (its palette legitimately grew by one:
/// `deg+1` is one larger); the new periodic schedule is read off the
/// prefix-free code of the new color and the node hosts again within
/// `2^ρ(new color)` holidays of quiescence.  On a deletion nothing *must*
/// happen, but the hosting rate drifts away from the new degree; a repair
/// policy recolors a node whose color exceeds `deg+1` by more than a
/// configurable slack.
///
/// The degree-bound scheduler of §5 is deliberately *not* given a dynamic
/// wrapper: the paper explains (and E5's ablation demonstrates) that its
/// correctness hinges on high-degree nodes committing first, which edge
/// insertions retroactively violate.  Making it dynamic is the paper's main
/// open problem.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/coding/prefix.hpp"
#include "fhg/coloring/coloring.hpp"
#include "fhg/graph/dynamic_graph.hpp"

namespace fhg::dynamic {

/// What happened in response to a topology event.
struct RecolorEvent {
  std::uint64_t holiday = 0;        ///< when the recolor took effect
  graph::NodeId node = 0;           ///< who recolored
  coloring::Color old_color = 0;
  coloring::Color new_color = 0;
  bool due_to_insertion = true;     ///< false = rate repair after deletions
};

/// The §4 scheduler running over a mutable conflict graph.
class DynamicPrefixCodeScheduler {
 public:
  /// Starts from `g`'s current topology with a fresh greedy coloring.
  /// `deletion_slack`: a node recolors after deletions once
  /// `col > deg + 1 + slack` (0 = eager repair; large = paper's "presumably
  /// there is nothing to be done").
  explicit DynamicPrefixCodeScheduler(graph::DynamicGraph& g,
                                      coding::CodeFamily family = coding::CodeFamily::kEliasOmega,
                                      std::uint32_t deletion_slack = 0);

  /// Advances one holiday and returns the happy set (sorted).
  [[nodiscard]] std::vector<graph::NodeId> next_holiday();

  [[nodiscard]] std::uint64_t current_holiday() const noexcept { return holiday_; }

  /// Rewinds the holiday counter.  Topology and coloring stay: membership is
  /// a pure function of the current slots and `t`, so nothing else is state.
  void rewind() noexcept { holiday_ = 0; }

  /// Forwards the holiday counter to `t` (never backwards) without
  /// materializing the intervening happy sets — O(1), same purity argument.
  void skip_to(std::uint64_t t) noexcept { holiday_ = std::max(holiday_, t); }

  /// Marries children of `u` and `v` (inserts the conflict edge) effective
  /// immediately.  Returns the recolor event if one was needed.
  std::optional<RecolorEvent> insert_edge(graph::NodeId u, graph::NodeId v);

  /// Dissolves the relationship (removes the edge).  Returns a repair
  /// recolor event if the slack policy fired.
  std::optional<RecolorEvent> erase_edge(graph::NodeId u, graph::NodeId v);

  /// A new parent joins the society (isolated node).
  graph::NodeId add_node();

  [[nodiscard]] coloring::Color color_of(graph::NodeId v) const noexcept {
    return colors_.color(v);
  }

  /// Current periodic slot of `v` (changes only when `v` recolors).
  [[nodiscard]] coding::ScheduleSlot slot_of(graph::NodeId v) const noexcept {
    return slots_[v];
  }

  /// Current period of `v`: `2^|K(col(v))|`.
  [[nodiscard]] std::uint64_t period_of(graph::NodeId v) const noexcept {
    return slots_[v].period();
  }

  /// All recolor events so far, in order.
  [[nodiscard]] const std::vector<RecolorEvent>& history() const noexcept { return history_; }

  /// Invariant check: the coloring is proper for the current topology.
  [[nodiscard]] bool coloring_proper() const;

 private:
  /// Recolors `v` to the smallest color free among its neighbors and
  /// refreshes its slot; records the event.
  RecolorEvent recolor(graph::NodeId v, bool due_to_insertion);

  void refresh_slot(graph::NodeId v);

  graph::DynamicGraph* graph_;
  coding::CodeFamily family_;
  std::uint32_t deletion_slack_;
  coloring::Coloring colors_;
  std::vector<coding::ScheduleSlot> slots_;
  std::uint64_t holiday_ = 0;
  std::vector<RecolorEvent> history_;
};

}  // namespace fhg::dynamic
