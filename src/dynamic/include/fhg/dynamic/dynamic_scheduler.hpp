#pragma once

/// \file dynamic_scheduler.hpp
/// The dynamic setting of Section 6: relationships form and dissolve while
/// the holidays keep coming.
///
/// The color-bound scheduler of §4 adapts gracefully — that is the paper's
/// point.  On an edge insertion `{p, q}` with `col(p) == col(q)`, the
/// lower-degree endpoint recolors (its palette legitimately grew by one:
/// `deg+1` is one larger); the new periodic schedule is read off the
/// prefix-free code of the new color and the node hosts again within
/// `2^ρ(new color)` holidays of quiescence.  On a deletion nothing *must*
/// happen, but the hosting rate drifts away from the new degree; a repair
/// policy recolors a node whose color exceeds `deg+1` by more than a
/// configurable slack.
///
/// The degree-bound scheduler of §5 is deliberately *not* given a dynamic
/// wrapper: the paper explains (and E5's ablation demonstrates) that its
/// correctness hinges on high-degree nodes committing first, which edge
/// insertions retroactively violate.  Making it dynamic is the paper's main
/// open problem.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/coding/prefix.hpp"
#include "fhg/coloring/coloring.hpp"
#include "fhg/coloring/parallel_jp.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::dynamic {

/// What happened in response to a topology event.
struct RecolorEvent {
  std::uint64_t holiday = 0;        ///< when the recolor took effect
  graph::NodeId node = 0;           ///< who recolored
  coloring::Color old_color = 0;
  coloring::Color new_color = 0;
  bool due_to_insertion = true;     ///< false = rate repair after deletions
};

/// What one `bulk_apply` call did, in apply order.
struct BulkOutcome {
  /// `applied[i] == 1` iff `commands[i]` changed topology (same commands
  /// the per-command path would have logged).
  std::vector<std::uint8_t> applied;
  /// Previously-colored nodes whose color changed (each also recorded as a
  /// `RecolorEvent` in `history()`); newly added nodes color for free.
  std::size_t recolored = 0;
  /// Rounds/conflicts of the Jones–Plassmann repair pass.
  coloring::JpStats jp;
  /// CSR snapshot of the post-batch topology — handed to the caller so the
  /// adapter's cached snapshot does not have to be rebuilt a second time.
  graph::Graph topology;
};

/// The §4 scheduler running over a mutable conflict graph.
class DynamicPrefixCodeScheduler {
 public:
  /// Starts from `g`'s current topology with a fresh coloring.
  /// `deletion_slack`: a node recolors after deletions once
  /// `col > deg + 1 + slack` (0 = eager repair; large = paper's "presumably
  /// there is nothing to be done").
  ///
  /// The initial coloring is the serial degree-ordered greedy pass below
  /// `parallel_crossover` nodes and the parallel Jones–Plassmann pass
  /// (seeded with `jp_seed`) at or above it; `parallel_crossover == 0`
  /// means always serial.  Both are deterministic for fixed inputs, so
  /// either way a snapshot restore rebuilds the identical coloring — the
  /// crossover and seed are part of the persisted recipe.
  explicit DynamicPrefixCodeScheduler(graph::DynamicGraph& g,
                                      coding::CodeFamily family = coding::CodeFamily::kEliasOmega,
                                      std::uint32_t deletion_slack = 0,
                                      std::uint32_t parallel_crossover = 0,
                                      std::uint64_t jp_seed = 1);

  /// Advances one holiday and returns the happy set (sorted).
  [[nodiscard]] std::vector<graph::NodeId> next_holiday();

  [[nodiscard]] std::uint64_t current_holiday() const noexcept { return holiday_; }

  /// Rewinds the holiday counter.  Topology and coloring stay: membership is
  /// a pure function of the current slots and `t`, so nothing else is state.
  void rewind() noexcept { holiday_ = 0; }

  /// Forwards the holiday counter to `t` (never backwards) without
  /// materializing the intervening happy sets — O(1), same purity argument.
  void skip_to(std::uint64_t t) noexcept { holiday_ = std::max(holiday_, t); }

  /// Marries children of `u` and `v` (inserts the conflict edge) effective
  /// immediately.  Returns the recolor event if one was needed.
  std::optional<RecolorEvent> insert_edge(graph::NodeId u, graph::NodeId v);

  /// Dissolves the relationship (removes the edge).  Returns a repair
  /// recolor event if the slack policy fired.
  std::optional<RecolorEvent> erase_edge(graph::NodeId u, graph::NodeId v);

  /// A new parent joins the society (isolated node).
  graph::NodeId add_node();

  /// The bulk twin of `insert_edge`/`erase_edge`/`add_node`: applies every
  /// command's *topology* change first (no per-event recoloring), then
  /// repairs the coloring in one parallel Jones–Plassmann pass over the
  /// affected nodes — conflict losers of applied insertions (the
  /// lower-degree endpoint, as in the per-command path), slack-violating
  /// endpoints of applied erasures, and newly added nodes — against the
  /// fixed colors of everyone else.  Endpoints must be pre-validated (in
  /// range, no self-loops): this path never throws mid-batch.
  ///
  /// Deterministic for fixed (state, commands): the affected set is derived
  /// in command order and the repair pass is thread-count-independent, so a
  /// replay that routes the same logged batch through `bulk_apply` lands on
  /// the identical coloring, slots, and history.  Note the policy is
  /// deliberately *different* from applying the commands one by one — which
  /// path a batch took is therefore recorded in the mutation log's batch
  /// records (see `BatchRecord`).
  BulkOutcome bulk_apply(std::span<const MutationCommand> commands);

  [[nodiscard]] coloring::Color color_of(graph::NodeId v) const noexcept {
    return colors_.color(v);
  }

  /// Current periodic slot of `v` (changes only when `v` recolors).
  [[nodiscard]] coding::ScheduleSlot slot_of(graph::NodeId v) const noexcept {
    return slots_[v];
  }

  /// Current period of `v`: `2^|K(col(v))|`.
  [[nodiscard]] std::uint64_t period_of(graph::NodeId v) const noexcept {
    return slots_[v].period();
  }

  /// All recolor events so far, in order.
  [[nodiscard]] const std::vector<RecolorEvent>& history() const noexcept { return history_; }

  /// Invariant check: the coloring is proper for the current topology.
  [[nodiscard]] bool coloring_proper() const;

  /// True iff the initial coloring ran the parallel Jones–Plassmann pass
  /// (i.e. the construction topology met the crossover).
  [[nodiscard]] bool built_parallel() const noexcept { return built_parallel_; }

  /// Stats of the parallel initial coloring (zero when `built_parallel()`
  /// is false).
  [[nodiscard]] const coloring::JpStats& build_stats() const noexcept { return build_stats_; }

 private:
  /// Recolors `v` to the smallest color free among its neighbors and
  /// refreshes its slot; records the event.
  RecolorEvent recolor(graph::NodeId v, bool due_to_insertion);

  void refresh_slot(graph::NodeId v);

  graph::DynamicGraph* graph_;
  coding::CodeFamily family_;
  std::uint32_t deletion_slack_;
  std::uint32_t parallel_crossover_;
  std::uint64_t jp_seed_;
  bool built_parallel_ = false;
  coloring::JpStats build_stats_;
  coloring::Coloring colors_;
  std::vector<coding::ScheduleSlot> slots_;
  std::uint64_t holiday_ = 0;
  std::vector<RecolorEvent> history_;
};

}  // namespace fhg::dynamic
