#pragma once

/// \file mutation.hpp
/// Topology mutations as first-class commands.
///
/// The §6 dynamic setting is a *stream of events* — marriages, divorces, new
/// parents — arriving while holidays keep coming.  `MutationCommand` reifies
/// one event: what happened, to whom, and at which holiday it landed.  A
/// sequence of commands replayed in order over the same initial topology
/// reproduces the same final coloring and schedule (every recolor decision is
/// a deterministic function of the state accumulated so far), which is what
/// lets the engine persist a dynamic tenant as *recipe + mutation log*
/// instead of raw scheduler state.

#include <cstdint>

#include "fhg/graph/graph.hpp"

namespace fhg::dynamic {

/// What kind of topology event a command carries.
enum class MutationOp : std::uint8_t {
  kInsertEdge = 0,  ///< marriage: conflict edge {u, v} appears
  kEraseEdge = 1,   ///< divorce: conflict edge {u, v} dissolves
  kAddNode = 2,     ///< a new (isolated) parent joins; u/v unused
};

/// One topology event, stamped with the holiday it landed at.  Commands with
/// `holiday == 0` landed before the first holiday; stamps are non-decreasing
/// along a log.
struct MutationCommand {
  MutationOp op = MutationOp::kInsertEdge;
  std::uint64_t holiday = 0;  ///< `current_holiday()` when the event applied
  graph::NodeId u = 0;
  graph::NodeId v = 0;

  friend constexpr bool operator==(const MutationCommand&, const MutationCommand&) noexcept =
      default;
};

/// How one applied batch is segmented inside a mutation log.  The log alone
/// no longer determines the final coloring once large batches can take the
/// bulk-recolor path (whose repair policy deliberately differs from applying
/// the same commands one by one), so the adapter records, per batch, how
/// many log entries it contributed and which path it took — and replay
/// routes each segment through the *recorded* path rather than re-deriving
/// it from a threshold that may since have changed.  Sizes along a log sum
/// to the log's length.
struct BatchRecord {
  std::uint32_t size = 0;  ///< applied commands this batch appended to the log
  bool bulk = false;       ///< true = bulk Jones–Plassmann repair, false = per-command
  friend constexpr bool operator==(const BatchRecord&, const BatchRecord&) noexcept = default;
};

/// Convenience constructors for the three ops (holiday stamped on apply).
[[nodiscard]] constexpr MutationCommand insert_edge_command(graph::NodeId u,
                                                            graph::NodeId v) noexcept {
  return MutationCommand{MutationOp::kInsertEdge, 0, u, v};
}

[[nodiscard]] constexpr MutationCommand erase_edge_command(graph::NodeId u,
                                                           graph::NodeId v) noexcept {
  return MutationCommand{MutationOp::kEraseEdge, 0, u, v};
}

[[nodiscard]] constexpr MutationCommand add_node_command() noexcept {
  return MutationCommand{MutationOp::kAddNode, 0, 0, 0};
}

}  // namespace fhg::dynamic
