#pragma once

/// \file adapter.hpp
/// `core::Scheduler` facade over the §6 dynamic scheduler.
///
/// `DynamicSchedulerAdapter` lets the serving layer treat a mutable tenant
/// like any other scheduler: between mutations the §4 prefix-code schedule is
/// *perfectly periodic* (each node is happy exactly at its slot's residue
/// class), so the adapter exposes `(period, phase)` rows and the engine can
/// materialize its O(1) `PeriodTable` — it just has to re-materialize after
/// every mutation batch, because a recolor moves the recolored node to a new
/// residue class.
///
/// The adapter also owns the tenant's *mutation log*: every applied
/// `MutationCommand`, stamped with the holiday it landed at.  Replaying the
/// log over the initial topology reproduces coloring, slots, and schedule
/// exactly (all recolor decisions are deterministic), which is the invariant
/// the engine's snapshot-v2 restore path is built on.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/core/scheduler.hpp"
#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::dynamic {

/// What applying one `MutationCommand` did.
struct ApplyResult {
  bool applied = false;                 ///< topology actually changed
  std::optional<RecolorEvent> recolor;  ///< set when the command forced a recolor
};

/// What applying one batch did.
struct BatchResult {
  std::size_t applied = 0;  ///< commands that changed topology
  bool bulk = false;        ///< true when the batch took the bulk-recolor path
  coloring::JpStats jp;     ///< repair-pass stats (zero on the per-command path)
};

/// Construction-time tuning of a dynamic tenant, mirrored from the engine's
/// `InstanceSpec` so it survives snapshot round trips.
struct DynamicOptions {
  coding::CodeFamily family = coding::CodeFamily::kEliasOmega;
  /// A node recolors after deletions once `col > deg + 1 + slack`.
  std::uint32_t deletion_slack = 0;
  /// Node count at or above which the *initial* coloring runs the parallel
  /// Jones–Plassmann pass (0 = always serial greedy).
  std::uint32_t parallel_crossover = 0;
  /// Command count at or above which `apply_batch` routes through the bulk
  /// recolor instead of per-command recoloring (0 = never bulk).
  std::uint32_t bulk_threshold = 0;
  /// Seed of the Jones–Plassmann priorities (initial coloring and repairs).
  std::uint64_t jp_seed = 1;
};

class DynamicSchedulerAdapter final : public core::Scheduler {
 public:
  /// Starts from `initial` with a fresh degree-ordered greedy coloring (the
  /// same deterministic construction every replay reproduces).
  explicit DynamicSchedulerAdapter(const graph::Graph& initial,
                                   coding::CodeFamily family = coding::CodeFamily::kEliasOmega,
                                   std::uint32_t deletion_slack = 0);

  /// Full-tuning constructor: crossover-gated parallel initial coloring and
  /// threshold-gated bulk batches (see `DynamicOptions`).
  DynamicSchedulerAdapter(const graph::Graph& initial, const DynamicOptions& options);

  DynamicSchedulerAdapter(const DynamicSchedulerAdapter&) = delete;
  DynamicSchedulerAdapter& operator=(const DynamicSchedulerAdapter&) = delete;

  // -- core::Scheduler --------------------------------------------------------

  [[nodiscard]] std::string name() const override { return "dynamic-prefix-code"; }

  /// CSR snapshot of the *current* topology (refreshed after every mutation;
  /// grows under `kAddNode`).
  [[nodiscard]] const graph::Graph& graph() const noexcept override { return current_; }

  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override {
    return scheduler_.next_holiday();
  }

  [[nodiscard]] std::uint64_t current_holiday() const noexcept override {
    return scheduler_.current_holiday();
  }

  /// Rewinds the holiday counter only.  Mutations are part of the tenant's
  /// identity (recipe + log), not of its stepping state, so topology and
  /// coloring are deliberately untouched — membership is a pure function of
  /// the current slots and `t`, exactly as before the rewind.
  void reset() override { scheduler_.rewind(); }

  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }

  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override {
    return scheduler_.period_of(v);
  }

  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override {
    return scheduler_.period_of(v);
  }

  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override {
    return scheduler_.slot_of(v).first_holiday();
  }

  [[nodiscard]] std::vector<core::PeriodPhaseRow> period_phase_rows() const override;

  /// O(1): the happy set of holiday `t` depends only on slots, not history.
  void advance_to(std::uint64_t t) override { scheduler_.skip_to(t); }

  // -- Mutations --------------------------------------------------------------

  /// Applies one command.  With `restamp` (the live path) the command is
  /// stamped with `current_holiday()` before being logged; without it (the
  /// replay path) the stamp is kept as-is.  Commands that change nothing
  /// (inserting a present edge, erasing an absent one) are *not* logged.
  /// Throws `std::invalid_argument` on out-of-range endpoints or self-loops.
  ApplyResult apply(MutationCommand cmd, bool restamp = true);

  /// Applies a batch in order (stamping each with the current holiday) and
  /// refreshes the topology snapshot once.  Batches of at least
  /// `bulk_threshold` commands (when the threshold is nonzero) take the bulk
  /// path: topology first, then one parallel Jones–Plassmann repair over the
  /// affected nodes; smaller batches recolor per command as before.  The
  /// whole batch is validated *before* anything applies, so a malformed
  /// command throws `std::invalid_argument` with the topology, log, and
  /// schedule untouched — never half-applied.  Which path ran is recorded in
  /// `batch_records()` (and returned), because the two policies land on
  /// different (each deterministic) colorings.
  BatchResult apply_batch(std::span<const MutationCommand> commands);

  /// Restore path: replays a persisted log segmented by `records` — each
  /// segment lands at its commands' holiday stamps and goes through the
  /// path its record names, reproducing the live coloring exactly even when
  /// thresholds have changed since the snapshot was taken.  Empty `records`
  /// means the pre-segmentation format: every command replays as its own
  /// per-command batch.  Same all-or-nothing validation as `apply_batch`;
  /// also throws `std::invalid_argument` when record sizes do not sum to
  /// the log length.
  void replay_log(std::span<const MutationCommand> log,
                  std::span<const BatchRecord> records = {});

  /// Incremental restore path: re-applies *one* persisted batch — the unit a
  /// write-ahead log stores — through the routing path its record names,
  /// keeping the persisted holiday stamps.  Unlike `replay_log` this works
  /// on an adapter with existing history (a tenant just restored from a
  /// snapshot), appending to the log and batch records exactly as the live
  /// path did.  Throws `std::invalid_argument` on malformed commands or when
  /// `record.size != commands.size()`, and `std::runtime_error` when replay
  /// does not re-apply every command (state diverged from the log).
  BatchResult replay_batch(std::span<const MutationCommand> commands, BatchRecord record);

  /// Every applied command so far, in order, with non-decreasing stamps.
  [[nodiscard]] const std::vector<MutationCommand>& mutation_log() const noexcept { return log_; }

  /// How the log divides into applied batches (sizes sum to the log length).
  [[nodiscard]] const std::vector<BatchRecord>& batch_records() const noexcept {
    return batches_;
  }

  /// Bumped once per applied command — the schedule-version counter the
  /// engine folds into its table epoch.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] const DynamicPrefixCodeScheduler& scheduler() const noexcept { return scheduler_; }

 private:
  ApplyResult apply_one(const MutationCommand& cmd);

  /// The bulk path body: topology + one repair pass, log + record appended.
  /// With `restamp` every logged command is stamped with the current
  /// holiday; without it (replay) the persisted stamps are kept.
  BatchResult apply_bulk(std::span<const MutationCommand> commands, bool restamp);

  /// Throws `std::invalid_argument` unless every command in `commands` has
  /// in-range, non-loop endpoints (tracking add_node growth along the way).
  void validate(std::span<const MutationCommand> commands) const;

  // The recipe topology itself is not retained — the owning Instance keeps
  // it (and the snapshot layer serializes it from there).
  graph::DynamicGraph dynamic_;   ///< live topology (must precede scheduler_)
  DynamicPrefixCodeScheduler scheduler_;
  std::uint32_t bulk_threshold_ = 0;
  graph::Graph current_;          ///< CSR cache of dynamic_, kept fresh
  std::vector<MutationCommand> log_;
  std::vector<BatchRecord> batches_;  ///< how log_ divides into applied batches
  std::uint64_t version_ = 0;
};

}  // namespace fhg::dynamic
