#pragma once

/// \file adapter.hpp
/// `core::Scheduler` facade over the §6 dynamic scheduler.
///
/// `DynamicSchedulerAdapter` lets the serving layer treat a mutable tenant
/// like any other scheduler: between mutations the §4 prefix-code schedule is
/// *perfectly periodic* (each node is happy exactly at its slot's residue
/// class), so the adapter exposes `(period, phase)` rows and the engine can
/// materialize its O(1) `PeriodTable` — it just has to re-materialize after
/// every mutation batch, because a recolor moves the recolored node to a new
/// residue class.
///
/// The adapter also owns the tenant's *mutation log*: every applied
/// `MutationCommand`, stamped with the holiday it landed at.  Replaying the
/// log over the initial topology reproduces coloring, slots, and schedule
/// exactly (all recolor decisions are deterministic), which is the invariant
/// the engine's snapshot-v2 restore path is built on.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fhg/coding/elias.hpp"
#include "fhg/core/scheduler.hpp"
#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::dynamic {

/// What applying one `MutationCommand` did.
struct ApplyResult {
  bool applied = false;                 ///< topology actually changed
  std::optional<RecolorEvent> recolor;  ///< set when the command forced a recolor
};

class DynamicSchedulerAdapter final : public core::Scheduler {
 public:
  /// Starts from `initial` with a fresh degree-ordered greedy coloring (the
  /// same deterministic construction every replay reproduces).
  explicit DynamicSchedulerAdapter(const graph::Graph& initial,
                                   coding::CodeFamily family = coding::CodeFamily::kEliasOmega,
                                   std::uint32_t deletion_slack = 0);

  DynamicSchedulerAdapter(const DynamicSchedulerAdapter&) = delete;
  DynamicSchedulerAdapter& operator=(const DynamicSchedulerAdapter&) = delete;

  // -- core::Scheduler --------------------------------------------------------

  [[nodiscard]] std::string name() const override { return "dynamic-prefix-code"; }

  /// CSR snapshot of the *current* topology (refreshed after every mutation;
  /// grows under `kAddNode`).
  [[nodiscard]] const graph::Graph& graph() const noexcept override { return current_; }

  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override {
    return scheduler_.next_holiday();
  }

  [[nodiscard]] std::uint64_t current_holiday() const noexcept override {
    return scheduler_.current_holiday();
  }

  /// Rewinds the holiday counter only.  Mutations are part of the tenant's
  /// identity (recipe + log), not of its stepping state, so topology and
  /// coloring are deliberately untouched — membership is a pure function of
  /// the current slots and `t`, exactly as before the rewind.
  void reset() override { scheduler_.rewind(); }

  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }

  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override {
    return scheduler_.period_of(v);
  }

  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override {
    return scheduler_.period_of(v);
  }

  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override {
    return scheduler_.slot_of(v).first_holiday();
  }

  [[nodiscard]] std::vector<core::PeriodPhaseRow> period_phase_rows() const override;

  /// O(1): the happy set of holiday `t` depends only on slots, not history.
  void advance_to(std::uint64_t t) override { scheduler_.skip_to(t); }

  // -- Mutations --------------------------------------------------------------

  /// Applies one command.  With `restamp` (the live path) the command is
  /// stamped with `current_holiday()` before being logged; without it (the
  /// replay path) the stamp is kept as-is.  Commands that change nothing
  /// (inserting a present edge, erasing an absent one) are *not* logged.
  /// Throws `std::invalid_argument` on out-of-range endpoints or self-loops.
  ApplyResult apply(MutationCommand cmd, bool restamp = true);

  /// Applies a batch in order (stamping each with the current holiday) and
  /// refreshes the topology snapshot once.  Returns the number of commands
  /// that changed topology.  The whole batch is validated *before* anything
  /// applies, so a malformed command throws `std::invalid_argument` with the
  /// topology, log, and schedule untouched — never half-applied.
  std::size_t apply_batch(std::span<const MutationCommand> commands);

  /// Restore path: replays a persisted log, landing each command at its own
  /// holiday stamp (O(1) counter skips in between) and refreshing the
  /// topology snapshot once at the end.  Same all-or-nothing validation as
  /// `apply_batch`.
  void replay_log(std::span<const MutationCommand> log);

  /// Every applied command so far, in order, with non-decreasing stamps.
  [[nodiscard]] const std::vector<MutationCommand>& mutation_log() const noexcept { return log_; }

  /// Bumped once per applied command — the schedule-version counter the
  /// engine folds into its table epoch.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  [[nodiscard]] const DynamicPrefixCodeScheduler& scheduler() const noexcept { return scheduler_; }

 private:
  ApplyResult apply_one(const MutationCommand& cmd);

  /// Throws `std::invalid_argument` unless every command in `commands` has
  /// in-range, non-loop endpoints (tracking add_node growth along the way).
  void validate(std::span<const MutationCommand> commands) const;

  // The recipe topology itself is not retained — the owning Instance keeps
  // it (and the snapshot layer serializes it from there).
  graph::DynamicGraph dynamic_;   ///< live topology (must precede scheduler_)
  DynamicPrefixCodeScheduler scheduler_;
  graph::Graph current_;          ///< CSR cache of dynamic_, kept fresh
  std::vector<MutationCommand> log_;
  std::uint64_t version_ = 0;
};

}  // namespace fhg::dynamic
