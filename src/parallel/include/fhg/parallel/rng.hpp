#pragma once

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Reproducibility is a first-class requirement for this library: distributed
/// rounds, Monte-Carlo schedulers and parallel sweeps must produce identical
/// results regardless of thread count or execution interleaving.  We therefore
/// use *counter-based* keyed generators: a stream is identified by a
/// `(seed, stream_id)` pair and any draw is a pure function of
/// `(seed, stream_id, counter)`.  Handing node `v` the stream id `v` (or
/// `(round, v)` mixed together) yields per-node randomness that is independent
/// of scheduling order.
///
/// The core mixer is SplitMix64 (Steele, Lea & Flood, OOPSLA'14 finalizer),
/// which passes BigCrush when used as a 64-bit mixer and is the standard seed
/// expander for xoshiro-family generators.

#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

namespace fhg::parallel {

/// Advances SplitMix64 state and returns the next 64-bit output.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of a 64-bit value (the SplitMix64 finalizer).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Combines two 64-bit keys into one, suitable for deriving sub-streams.
[[nodiscard]] constexpr std::uint64_t mix_keys(std::uint64_t a, std::uint64_t b) noexcept {
  return mix64(a + 0x9E3779B97F4A7C15ULL * (b + 1));
}

/// A deterministic keyed random stream.
///
/// Satisfies `std::uniform_random_bit_generator`, so it can be plugged into
/// `<random>` distributions, but also provides allocation-free helpers for the
/// distributions this library actually needs (bounded ints, reals, Bernoulli,
/// shuffles).  Copyable; copies continue the sequence independently.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Creates the stream identified by `(seed, stream)`.
  constexpr explicit Rng(std::uint64_t seed, std::uint64_t stream = 0) noexcept
      : state_(mix_keys(seed, stream)) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit draw.
  constexpr result_type operator()() noexcept { return splitmix64_next(state_); }

  /// Derives an independent child stream; does not perturb this stream.
  [[nodiscard]] constexpr Rng split(std::uint64_t stream) const noexcept {
    Rng child(0);
    child.state_ = mix_keys(state_, stream);
    return child;
  }

  /// Uniform integer in `[0, bound)`. `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t uniform_below(std::uint64_t bound) noexcept {
    // 128-bit multiply keeps the hot path a single multiplication.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range `[lo, hi]`.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(uniform_below(span));
  }

  /// Uniform real in `[0, 1)` with 53 bits of precision.
  [[nodiscard]] double uniform_real() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw: true with probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform_real() < p; }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_below(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Returns a uniformly random permutation of `{0, 1, ..., n-1}`.
  [[nodiscard]] std::vector<std::uint32_t> permutation(std::uint32_t n) {
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0U);
    shuffle(perm);
    return perm;
  }

 private:
  std::uint64_t state_;
};

/// Pure-function draw: the `counter`-th output of stream `(seed, stream)`.
/// Useful when even carrying an `Rng` object is inconvenient (e.g. a value
/// that must be recomputable from `(round, node)` alone).
[[nodiscard]] constexpr std::uint64_t hash_draw(std::uint64_t seed, std::uint64_t stream,
                                                std::uint64_t counter) noexcept {
  return mix64(mix_keys(seed, stream) + 0x9E3779B97F4A7C15ULL * (counter + 1));
}

}  // namespace fhg::parallel
