#pragma once

/// \file thread_pool.hpp
/// A fixed-size worker pool with a blocking task queue.
///
/// The pool is intentionally simple: the workloads in this library are
/// coarse-grained (whole graph sweeps, Monte-Carlo replicas, per-round node
/// batches), so a single mutex-protected queue is never the bottleneck.  All
/// higher-level parallel constructs (`parallel_for`, `parallel_reduce`) are
/// built on top of `submit`.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace fhg::parallel {

/// Fixed-size thread pool. Threads are started in the constructor and joined
/// in the destructor; tasks still queued at destruction are completed first.
/// Thread-safe: `submit` may be called concurrently from any thread,
/// including from inside tasks (but a task must not block on the future of a
/// task it cannot guarantee is already running — classic deadlock).
class ThreadPool {
 public:
  /// Creates a pool with `threads` workers (0 means `default_concurrency()`).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues `fn(args...)`; returns a future for its result.
  template <typename F, typename... Args>
  auto submit(F&& fn, Args&&... args) -> std::future<std::invoke_result_t<F, Args...>> {
    using R = std::invoke_result_t<F, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        [fn = std::forward<F>(fn), ... args = std::forward<Args>(args)]() mutable {
          return std::invoke(std::move(fn), std::move(args)...);
        });
    std::future<R> result = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Hardware concurrency with a sane floor of 1.
  [[nodiscard]] static std::size_t default_concurrency() noexcept;

  /// A process-wide shared pool (lazily constructed, default concurrency).
  /// Prefer passing an explicit pool in library code; this exists so that
  /// examples and benches do not each spin up their own workers.
  [[nodiscard]] static ThreadPool& shared();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fhg::parallel
