#pragma once

/// \file parallel_for.hpp
/// Data-parallel loops over index ranges, built on ThreadPool.
///
/// Determinism contract: the loop body receives the *global* index, so any
/// randomness derived from `(seed, index)` is independent of the number of
/// threads and of chunk boundaries.  `parallel_reduce` combines per-chunk
/// partials in ascending chunk order, so floating-point reductions are also
/// reproducible for a fixed `grain`.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <future>
#include <utility>
#include <vector>

#include "fhg/parallel/thread_pool.hpp"

namespace fhg::parallel {

/// Splits `[begin, end)` into chunks of at most `grain` and runs
/// `body(index)` for every index, distributing chunks over `pool`.
/// Falls back to a serial loop for small ranges.  Exceptions thrown by the
/// body are propagated (the first one, in chunk order).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1024) {
  if (begin >= end) {
    return;
  }
  const std::size_t n = end - begin;
  if (n <= grain || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }
  std::vector<std::future<void>> chunks;
  chunks.reserve((n + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    chunks.push_back(pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) {
        body(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& chunk : chunks) {
    try {
      chunk.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

/// Convenience overload using the shared pool.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, Body&& body, std::size_t grain = 1024) {
  parallel_for(ThreadPool::shared(), begin, end, std::forward<Body>(body), grain);
}

/// Like `parallel_for`, but chunks are *claimed* dynamically: each worker
/// repeatedly grabs the next `chunk`-sized slice off a shared atomic cursor
/// instead of being handed a fixed static partition.  This is the right
/// shape for skewed per-index costs (e.g. per-node work proportional to
/// degree on a power-law graph, where a static partition containing a hub
/// serializes the whole loop on one thread while its siblings idle).
///
/// The determinism contract of `parallel_for` carries over: the body still
/// receives the global index, so a body whose writes are index-owned
/// produces thread-count-independent results — only the *assignment* of
/// indices to threads varies run to run, never the set of indices executed.
/// Exceptions are propagated (the first one, in worker order).
template <typename Body>
void parallel_for_dynamic(ThreadPool& pool, std::size_t begin, std::size_t end, Body&& body,
                          std::size_t chunk = 256) {
  if (begin >= end) {
    return;
  }
  chunk = std::max<std::size_t>(chunk, 1);
  const std::size_t n = end - begin;
  if (n <= chunk || pool.size() == 1) {
    for (std::size_t i = begin; i < end; ++i) {
      body(i);
    }
    return;
  }
  const std::size_t workers = std::min(pool.size(), (n + chunk - 1) / chunk);
  std::atomic<std::size_t> cursor{begin};
  std::vector<std::future<void>> tasks;
  tasks.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) {
    tasks.push_back(pool.submit([&cursor, end, chunk, &body] {
      for (;;) {
        const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
        if (lo >= end) {
          return;
        }
        const std::size_t hi = std::min(end, lo + chunk);
        for (std::size_t i = lo; i < hi; ++i) {
          body(i);
        }
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& task : tasks) {
    try {
      task.get();
    } catch (...) {
      if (!first_error) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error) {
    std::rethrow_exception(first_error);
  }
}

/// Convenience overload using the shared pool.
template <typename Body>
void parallel_for_dynamic(std::size_t begin, std::size_t end, Body&& body,
                          std::size_t chunk = 256) {
  parallel_for_dynamic(ThreadPool::shared(), begin, end, std::forward<Body>(body), chunk);
}

/// Parallel map-reduce over `[begin, end)`.
///
/// `map(i)` produces a value; `combine(acc, value)` folds it into the
/// accumulator.  Per-chunk partials are folded left-to-right in chunk order
/// starting from `identity`, giving thread-count-independent results for
/// associative `combine`.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t begin, std::size_t end, T identity,
                                Map&& map, Combine&& combine, std::size_t grain = 1024) {
  if (begin >= end) {
    return identity;
  }
  const std::size_t n = end - begin;
  if (n <= grain || pool.size() == 1) {
    T acc = std::move(identity);
    for (std::size_t i = begin; i < end; ++i) {
      acc = combine(std::move(acc), map(i));
    }
    return acc;
  }
  std::vector<std::future<T>> chunks;
  chunks.reserve((n + grain - 1) / grain);
  for (std::size_t lo = begin; lo < end; lo += grain) {
    const std::size_t hi = std::min(end, lo + grain);
    chunks.push_back(pool.submit([lo, hi, &map, &combine, identity]() mutable {
      T acc = std::move(identity);
      for (std::size_t i = lo; i < hi; ++i) {
        acc = combine(std::move(acc), map(i));
      }
      return acc;
    }));
  }
  T acc = std::move(identity);
  for (auto& chunk : chunks) {
    acc = combine(std::move(acc), chunk.get());
  }
  return acc;
}

/// Convenience overload using the shared pool.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                                Combine&& combine, std::size_t grain = 1024) {
  return parallel_reduce(ThreadPool::shared(), begin, end, std::move(identity),
                         std::forward<Map>(map), std::forward<Combine>(combine), grain);
}

}  // namespace fhg::parallel
