#include "fhg/parallel/thread_pool.hpp"

#include <algorithm>

namespace fhg::parallel {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = threads == 0 ? default_concurrency() : threads;
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::default_concurrency() noexcept {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace fhg::parallel
