#pragma once

/// \file network.hpp
/// A synchronous message-passing simulator for the LOCAL model
/// (Linial 1992; Peleg 2000), the computational setting of the paper's
/// distributed algorithms.
///
/// Semantics:
///  * Computation proceeds in global rounds. In each round every *active*
///    node runs the protocol handler once; messages sent in round `r` are
///    delivered at the start of round `r + 1`.
///  * Nodes may only talk to graph neighbors.  A node that calls `halt()`
///    stops being scheduled (its neighbors can still send to it; deliveries
///    to halted nodes are counted but not processed).
///  * Per-node randomness comes from a counter-based stream keyed by
///    `(network seed, node, round)`, so runs are bit-reproducible regardless
///    of the thread count used to execute a round.
///
/// The simulator records rounds, message and word counts — the paper's
/// "lightweight" claims (§1.1) are about exactly these quantities.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"
#include "fhg/parallel/rng.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace fhg::distributed {

/// A message delivered to a node: sender plus a small word payload.
struct Message {
  graph::NodeId from = 0;
  std::vector<std::uint64_t> payload;
};

/// Cumulative simulator statistics.
struct NetStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;

  /// Average messages per executed round (0 when no rounds ran).
  [[nodiscard]] double messages_per_round() const noexcept {
    return rounds == 0 ? 0.0 : static_cast<double>(messages) / static_cast<double>(rounds);
  }
};

class SyncNetwork;

/// Per-invocation view handed to the protocol handler.
///
/// Only `send`, `broadcast` and `halt` mutate; all mutation is confined to
/// this node's private outbox/flag, so handlers for distinct nodes may run
/// concurrently.  Handlers must not touch other nodes' algorithm state
/// directly — communicate through messages, as the LOCAL model demands.
class RoundContext {
 public:
  /// This node's id.
  [[nodiscard]] graph::NodeId self() const noexcept { return self_; }

  /// Current round number (0-based).
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// Degree of this node in the communication graph.
  [[nodiscard]] std::uint32_t degree() const noexcept;

  /// Neighbors of this node.
  [[nodiscard]] std::span<const graph::NodeId> neighbors() const noexcept;

  /// Messages delivered this round, sorted by sender id.
  [[nodiscard]] std::span<const Message> inbox() const noexcept { return inbox_; }

  /// Deterministic per-(node, round) random stream.
  [[nodiscard]] parallel::Rng& rng() noexcept { return rng_; }

  /// Sends `payload` to neighbor `to` (delivered next round).
  /// Throws `std::invalid_argument` if `to` is not a neighbor.
  void send(graph::NodeId to, std::vector<std::uint64_t> payload);

  /// Sends `payload` to every neighbor.
  void broadcast(const std::vector<std::uint64_t>& payload);

  /// Marks this node as finished; it will not be scheduled again.
  void halt() noexcept { halted_ = true; }

 private:
  friend class SyncNetwork;
  RoundContext(const SyncNetwork& net, graph::NodeId self, std::uint64_t round,
               std::span<const Message> inbox, parallel::Rng rng)
      : net_(net), self_(self), round_(round), inbox_(inbox), rng_(rng) {}

  const SyncNetwork& net_;
  graph::NodeId self_;
  std::uint64_t round_;
  std::span<const Message> inbox_;
  parallel::Rng rng_;
  std::vector<std::pair<graph::NodeId, std::vector<std::uint64_t>>> outbox_;
  bool halted_ = false;
};

/// The synchronous round engine.
class SyncNetwork {
 public:
  /// Protocol body, run once per active node per round.
  using Handler = std::function<void(RoundContext&)>;

  /// Builds a network over `g`.  If `pool` is non-null, rounds execute node
  /// handlers in parallel (results are identical to serial execution).
  SyncNetwork(const graph::Graph& g, std::uint64_t seed, parallel::ThreadPool* pool = nullptr);

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] graph::NodeId num_nodes() const noexcept { return graph_->num_nodes(); }

  /// Installs the protocol handler (must be set before stepping).
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Number of nodes that have not halted.
  [[nodiscard]] graph::NodeId active_nodes() const noexcept { return active_count_; }

  [[nodiscard]] bool halted(graph::NodeId v) const noexcept { return halted_[v]; }

  /// Runs one synchronous round. Returns the number of still-active nodes.
  graph::NodeId step();

  /// Runs rounds until every node halts or `max_rounds` elapse; returns the
  /// number of rounds executed.  Throws `std::runtime_error` if the cap is
  /// hit with nodes still active (a protocol liveness failure).
  std::uint64_t run(std::uint64_t max_rounds);

  /// Cumulative statistics.
  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }

 private:
  const graph::Graph* graph_;
  std::uint64_t seed_;
  parallel::ThreadPool* pool_;
  Handler handler_;
  std::vector<std::vector<Message>> inboxes_;  // messages for the upcoming round
  std::vector<bool> halted_;
  graph::NodeId active_count_;
  std::uint64_t round_ = 0;
  NetStats stats_;
};

}  // namespace fhg::distributed
