#pragma once

/// \file degree_bound.hpp
/// The distributed degree-bound algorithm of Section 5.2.
///
/// Runs `⌈log(Δ+1)⌉ + 1` phases, from the highest degree class down to 0.
/// In phase `i` the nodes with `⌈log(deg+1)⌉ = i` pick an integer
/// `x ∈ [0, 2^i)` via the palette coloring algorithm (johansson.hpp), with
/// the palette restricted to residues that do not collide modulo `2^i` with
/// integers already picked by higher-class neighbors.  Node `p` then hosts
/// exactly the holidays `t ≡ x (mod 2^i)` — a perfectly periodic schedule
/// with period `2^⌈log(d+1)⌉ ≤ 2d` (Theorem 5.3), and by Lemma 5.2 no two
/// adjacent nodes ever host together.
///
/// Phase order matters: high-degree classes must commit first (§6 explains
/// why the reverse fails) — `bench_e05` ablates this.

#include <cstdint>
#include <vector>

#include "fhg/coding/prefix.hpp"
#include "fhg/distributed/network.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::distributed {

/// Result of the distributed residue assignment.
struct DegreeBoundRun {
  /// Per-node periodic slot: node `v` hosts at `t ≡ slots[v].residue
  /// (mod 2^slots[v].length)` with `length = ⌈log(deg(v)+1)⌉`.
  std::vector<coding::ScheduleSlot> slots;
  /// Aggregated over all phases.
  NetStats stats;
  /// Number of phases executed (degree classes present in the graph).
  std::uint32_t phases = 0;
};

/// Runs the §5.2 algorithm.  The returned slots are conflict-free:
/// for every edge `{u,v}` and every holiday `t`, not both slots match `t`.
[[nodiscard]] DegreeBoundRun distributed_degree_bound(const graph::Graph& g, std::uint64_t seed,
                                                      parallel::ThreadPool* pool = nullptr);

}  // namespace fhg::distributed
