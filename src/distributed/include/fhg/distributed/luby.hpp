#pragma once

/// \file luby.hpp
/// Luby's randomized Maximal Independent Set algorithm in the LOCAL model.
///
/// Included as (a) the classic distributed symmetry-breaking companion to
/// coloring — the paper's §1.3 highlights coloring and MIS as *the* problems
/// of the LOCAL model — and (b) a distributed baseline for the single-holiday
/// happiness question of Appendix A (an MIS is a maximal, though not maximum,
/// set of simultaneously-happy parents).
///
/// Per phase (2 simulator rounds): every active node draws a random 64-bit
/// priority and broadcasts it; a node whose priority beats all active
/// neighbors joins the MIS, tells its neighbors, and everyone adjacent to a
/// winner drops out.  O(log n) phases w.h.p.

#include <cstdint>
#include <vector>

#include "fhg/distributed/network.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::distributed {

/// Result of a distributed MIS run.
struct MisRun {
  std::vector<graph::NodeId> independent_set;  ///< sorted
  NetStats stats;
};

/// Runs Luby's algorithm.  The result is always a *maximal* independent set.
[[nodiscard]] MisRun luby_mis(const graph::Graph& g, std::uint64_t seed,
                              parallel::ThreadPool* pool = nullptr,
                              std::uint64_t max_rounds = 0);

}  // namespace fhg::distributed
