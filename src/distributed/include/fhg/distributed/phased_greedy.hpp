#pragma once

/// \file phased_greedy.hpp
/// The distributed Phased Greedy Coloring engine of Section 3.
///
/// At holiday `i` the nodes whose current color equals `i` are happy; right
/// afterwards each of them recolors to the smallest value `s > i` not used by
/// any neighbor (so `s ≤ i + deg + 1`).  Every holiday costs O(1)
/// communication rounds: happy nodes broadcast a color query; neighbors reply
/// with their current color; the new color is fixed before the next holiday.
/// Theorem 3.1: `mul(p) ≤ deg(p) + 1` for every node, provided the initial
/// coloring is proper with `col(p) ≤ deg(p) + 1`.
///
/// This class is the message-passing demonstration with full round/message
/// accounting; `fhg::core::PhasedGreedyScheduler` is the fast sequential
/// equivalent used for long-horizon experiments (they produce identical
/// schedules for the same initial coloring, which tests assert).

#include <cstdint>
#include <vector>

#include "fhg/coloring/coloring.hpp"
#include "fhg/distributed/network.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::distributed {

/// Result of running the distributed phased-greedy engine for `H` holidays.
struct PhasedGreedyRun {
  /// `happy_sets[h]` = nodes happy at holiday `h+1` (holidays are 1-based in
  /// the paper), each an independent set.
  std::vector<std::vector<graph::NodeId>> happy_sets;
  /// Final color of every node after the last processed holiday.
  coloring::Coloring final_colors;
  NetStats stats;
};

/// Runs the §3 protocol for `holidays` holidays on top of `initial`, which
/// must be a proper, complete coloring of `g` (throws otherwise).
/// Two simulator rounds per holiday.
[[nodiscard]] PhasedGreedyRun run_phased_greedy(const graph::Graph& g,
                                                const coloring::Coloring& initial,
                                                std::uint64_t holidays,
                                                parallel::ThreadPool* pool = nullptr);

}  // namespace fhg::distributed
