#pragma once

/// \file johansson.hpp
/// Randomized distributed coloring in the LOCAL model.
///
/// This is the library's stand-in for the BEPS algorithm (Barenboim, Elkin,
/// Pettie, Schneider, FOCS'12) the paper invokes as a black box — see
/// DESIGN.md §3.  We implement the simple palette algorithm of Johansson
/// (Inf. Proc. Lett. 70(5), 1999), which BEPS itself builds on and which the
/// paper cites ([16]) for the crucial property: the color picked by a node of
/// degree `d` never exceeds `d + 1`.
///
/// Protocol (per phase = 2 simulator rounds):
///  1. every uncolored node draws a uniform candidate from its palette and
///     broadcasts it;
///  2. a node keeps its candidate iff no *uncolored* neighbor proposed the
///     same value; winners broadcast finalization and halt, losers prune
///     finalized colors from their palettes and retry.
///
/// Each phase colors each node with probability ≥ 1/4, so all nodes finish in
/// `O(log n)` phases w.h.p.  The palette-restricted entry point is the
/// primitive needed by the §5.2 distributed degree-bound algorithm.

#include <cstdint>
#include <vector>

#include "fhg/coloring/coloring.hpp"
#include "fhg/distributed/network.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::distributed {

/// Result of a distributed coloring run.
struct ColoringRun {
  coloring::Coloring coloring;
  NetStats stats;
};

/// Runs the palette algorithm where node `v` may only use colors from
/// `palettes[v]` and only nodes with `participate[v]` take part (others are
/// treated as absent: they neither send nor constrain anyone).
///
/// Precondition (checked): for every participating `v`, `palettes[v].size()`
/// exceeds the number of participating neighbors of `v`.  This is the
/// pigeonhole condition guaranteeing termination.
///
/// Throws `std::runtime_error` if not converged after `max_rounds` simulator
/// rounds (default: generous `64 * (2 + log2 n)`).
[[nodiscard]] ColoringRun palette_color(const graph::Graph& g,
                                        const std::vector<std::vector<coloring::Color>>& palettes,
                                        const std::vector<bool>& participate, std::uint64_t seed,
                                        parallel::ThreadPool* pool = nullptr,
                                        std::uint64_t max_rounds = 0);

/// Johansson's `(deg+1)`-list coloring: every node participates with palette
/// `{1, …, deg(v) + 1}`.  The returned coloring is proper, complete and
/// degree-bounded (`col(v) ≤ deg(v) + 1`).
[[nodiscard]] ColoringRun johansson_color(const graph::Graph& g, std::uint64_t seed,
                                          parallel::ThreadPool* pool = nullptr,
                                          std::uint64_t max_rounds = 0);

}  // namespace fhg::distributed
