#include "fhg/distributed/degree_bound.hpp"

#include <algorithm>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/distributed/johansson.hpp"

namespace fhg::distributed {

DegreeBoundRun distributed_degree_bound(const graph::Graph& g, std::uint64_t seed,
                                        parallel::ThreadPool* pool) {
  const graph::NodeId n = g.num_nodes();
  DegreeBoundRun result;
  result.slots.assign(n, coding::ScheduleSlot{});
  if (n == 0) {
    return result;
  }

  // Degree class of v: j = ceil(log2(deg+1)); period will be 2^j.
  std::vector<std::uint32_t> klass(n);
  std::uint32_t top_class = 0;
  for (graph::NodeId v = 0; v < n; ++v) {
    klass[v] = coding::ceil_log2(g.degree(v) + 1);
    top_class = std::max(top_class, klass[v]);
  }

  std::vector<bool> assigned(n, false);
  std::vector<std::uint64_t> residue(n, 0);

  for (std::uint32_t phase = top_class + 1; phase-- > 0;) {
    std::vector<bool> participate(n, false);
    bool any = false;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (klass[v] == phase) {
        participate[v] = true;
        any = true;
      }
    }
    if (!any) {
      continue;
    }
    ++result.phases;

    const std::uint64_t modulus = std::uint64_t{1} << phase;
    std::vector<std::vector<coloring::Color>> palettes(n);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!participate[v]) {
        continue;
      }
      // Residues forbidden by already-assigned (higher-class) neighbors.
      std::vector<bool> forbidden(modulus, false);
      for (const graph::NodeId w : g.neighbors(v)) {
        if (assigned[w]) {
          forbidden[residue[w] % modulus] = true;
        }
      }
      // Palette entries are residue+1 because 0 is the engine's uncolored
      // sentinel.
      for (std::uint64_t x = 0; x < modulus; ++x) {
        if (!forbidden[x]) {
          palettes[v].push_back(static_cast<coloring::Color>(x + 1));
        }
      }
    }

    ColoringRun phase_run =
        palette_color(g, palettes, participate, parallel::mix_keys(seed, phase), pool);
    result.stats.rounds += phase_run.stats.rounds;
    result.stats.messages += phase_run.stats.messages;
    result.stats.words += phase_run.stats.words;

    for (graph::NodeId v = 0; v < n; ++v) {
      if (participate[v]) {
        residue[v] = phase_run.coloring.color(v) - 1;
        assigned[v] = true;
      }
    }
    // Disseminating the committed residues to neighbors costs one broadcast
    // round in the real network; account for it.
    result.stats.rounds += 1;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (participate[v]) {
        result.stats.messages += g.degree(v);
        result.stats.words += 2ULL * g.degree(v);
      }
    }
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    result.slots[v] = coding::ScheduleSlot{residue[v], klass[v]};
  }
  return result;
}

}  // namespace fhg::distributed
