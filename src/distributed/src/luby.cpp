#include "fhg/distributed/luby.hpp"

#include <algorithm>
#include <cmath>

namespace fhg::distributed {

namespace {

constexpr std::uint64_t kPriority = 1;
constexpr std::uint64_t kJoined = 2;

enum class Status : std::uint8_t { kActive, kInMis, kOut };

}  // namespace

MisRun luby_mis(const graph::Graph& g, std::uint64_t seed, parallel::ThreadPool* pool,
                std::uint64_t max_rounds) {
  const graph::NodeId n = g.num_nodes();
  std::vector<Status> status(n, Status::kActive);
  std::vector<std::uint64_t> my_priority(n, 0);

  SyncNetwork net(g, seed, pool);
  net.set_handler([&](RoundContext& ctx) {
    const graph::NodeId v = ctx.self();
    if (ctx.round() % 2 == 0) {
      // A neighbor joining the MIS knocks this node out.
      for (const Message& msg : ctx.inbox()) {
        if (!msg.payload.empty() && msg.payload[0] == kJoined) {
          status[v] = Status::kOut;
          ctx.halt();
          return;
        }
      }
      my_priority[v] = ctx.rng()();
      ctx.broadcast({kPriority, my_priority[v]});
    } else {
      bool beaten = false;
      for (const Message& msg : ctx.inbox()) {
        if (msg.payload.size() == 2 && msg.payload[0] == kPriority) {
          // Ties broken by node id to keep the winner unique.
          if (msg.payload[1] > my_priority[v] ||
              (msg.payload[1] == my_priority[v] && msg.from > v)) {
            beaten = true;
            break;
          }
        }
      }
      if (!beaten) {
        status[v] = Status::kInMis;
        ctx.broadcast({kJoined});
        ctx.halt();
      }
    }
  });

  if (max_rounds == 0) {
    const double ln = std::log2(std::max<double>(2.0, n));
    max_rounds = static_cast<std::uint64_t>(64.0 * (2.0 + ln));
  }
  net.run(max_rounds);

  MisRun result;
  result.stats = net.stats();
  for (graph::NodeId v = 0; v < n; ++v) {
    if (status[v] == Status::kInMis) {
      result.independent_set.push_back(v);
    }
  }
  return result;
}

}  // namespace fhg::distributed
