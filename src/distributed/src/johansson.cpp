#include "fhg/distributed/johansson.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace fhg::distributed {

namespace {

// Message tags.
constexpr std::uint64_t kPropose = 1;
constexpr std::uint64_t kFinal = 2;

struct NodeState {
  std::vector<coloring::Color> palette;
  coloring::Color candidate = coloring::kUncolored;
  coloring::Color final_color = coloring::kUncolored;
  bool participating = false;
};

}  // namespace

ColoringRun palette_color(const graph::Graph& g,
                          const std::vector<std::vector<coloring::Color>>& palettes,
                          const std::vector<bool>& participate, std::uint64_t seed,
                          parallel::ThreadPool* pool, std::uint64_t max_rounds) {
  const graph::NodeId n = g.num_nodes();
  if (palettes.size() != n || participate.size() != n) {
    throw std::invalid_argument("palette_color: palettes/participate must have one entry per node");
  }

  std::vector<NodeState> state(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    state[v].participating = participate[v];
    state[v].palette = palettes[v];
    std::sort(state[v].palette.begin(), state[v].palette.end());
    state[v].palette.erase(std::unique(state[v].palette.begin(), state[v].palette.end()),
                           state[v].palette.end());
  }

  // Pigeonhole precondition: palette strictly larger than the number of
  // participating neighbors.
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!participate[v]) {
      continue;
    }
    std::size_t rivals = 0;
    for (const graph::NodeId w : g.neighbors(v)) {
      rivals += participate[w] ? 1 : 0;
    }
    if (state[v].palette.size() <= rivals) {
      throw std::invalid_argument("palette_color: node " + std::to_string(v) + " has palette of " +
                                  std::to_string(state[v].palette.size()) + " colors for " +
                                  std::to_string(rivals) + " rivals (pigeonhole violated)");
    }
  }

  SyncNetwork net(g, seed, pool);
  net.set_handler([&state](RoundContext& ctx) {
    NodeState& me = state[ctx.self()];
    if (!me.participating) {
      ctx.halt();
      return;
    }
    if (ctx.round() % 2 == 0) {
      // Propose phase.  Process finalizations from the previous decide phase
      // first: neighbors' final colors leave the palette for good.
      for (const Message& msg : ctx.inbox()) {
        if (msg.payload.size() == 2 && msg.payload[0] == kFinal) {
          const auto c = static_cast<coloring::Color>(msg.payload[1]);
          const auto it = std::lower_bound(me.palette.begin(), me.palette.end(), c);
          if (it != me.palette.end() && *it == c) {
            me.palette.erase(it);
          }
        }
      }
      const std::size_t pick = static_cast<std::size_t>(ctx.rng().uniform_below(me.palette.size()));
      me.candidate = me.palette[pick];
      ctx.broadcast({kPropose, me.candidate});
    } else {
      // Decide phase: keep the candidate iff no active rival proposed it.
      bool contested = false;
      for (const Message& msg : ctx.inbox()) {
        if (msg.payload.size() == 2 && msg.payload[0] == kPropose &&
            msg.payload[1] == me.candidate) {
          contested = true;
          break;
        }
      }
      if (!contested) {
        me.final_color = me.candidate;
        ctx.broadcast({kFinal, me.final_color});
        ctx.halt();
      }
    }
  });

  if (max_rounds == 0) {
    const double ln = std::log2(std::max<double>(2.0, n));
    max_rounds = static_cast<std::uint64_t>(64.0 * (2.0 + ln));
  }
  net.run(max_rounds);

  coloring::Coloring result(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (state[v].participating) {
      result.set_color(v, state[v].final_color);
    }
  }
  return ColoringRun{std::move(result), net.stats()};
}

ColoringRun johansson_color(const graph::Graph& g, std::uint64_t seed, parallel::ThreadPool* pool,
                            std::uint64_t max_rounds) {
  const graph::NodeId n = g.num_nodes();
  std::vector<std::vector<coloring::Color>> palettes(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    palettes[v].resize(g.degree(v) + 1);
    for (std::uint32_t c = 0; c <= g.degree(v); ++c) {
      palettes[v][c] = c + 1;
    }
  }
  return palette_color(g, palettes, std::vector<bool>(n, true), seed, pool, max_rounds);
}

}  // namespace fhg::distributed
