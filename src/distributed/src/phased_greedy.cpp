#include "fhg/distributed/phased_greedy.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

namespace fhg::distributed {

namespace {

constexpr std::uint64_t kQuery = 1;
constexpr std::uint64_t kColorReply = 2;

}  // namespace

PhasedGreedyRun run_phased_greedy(const graph::Graph& g, const coloring::Coloring& initial,
                                  std::uint64_t holidays, parallel::ThreadPool* pool) {
  if (!initial.proper(g) || !initial.complete()) {
    throw std::invalid_argument("run_phased_greedy: initial coloring must be proper and complete");
  }
  const graph::NodeId n = g.num_nodes();

  std::vector<coloring::Color> col(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    col[v] = initial.color(v);
  }

  PhasedGreedyRun result;
  result.happy_sets.assign(holidays, {});
  std::mutex happy_mutex;  // happy-set appends may race under a thread pool

  SyncNetwork net(g, /*seed=*/0, pool);
  net.set_handler([&](RoundContext& ctx) {
    const graph::NodeId v = ctx.self();
    const std::uint64_t holiday = ctx.round() / 2 + 1;  // 1-based, paper style
    if (ctx.round() % 2 == 0) {
      // Start of a holiday.  First finish a pending recolor from the
      // previous holiday: the color replies are in this round's inbox.
      bool recoloring = false;
      std::vector<coloring::Color> neighbor_colors;
      for (const Message& msg : ctx.inbox()) {
        if (msg.payload.size() == 2 && msg.payload[0] == kColorReply) {
          recoloring = true;
          neighbor_colors.push_back(static_cast<coloring::Color>(msg.payload[1]));
        }
      }
      if (recoloring || (holiday > 1 && col[v] == holiday - 1 && ctx.degree() == 0)) {
        // Smallest s > previous holiday not used by any neighbor.
        const auto floor_color = static_cast<coloring::Color>(holiday - 1);
        std::sort(neighbor_colors.begin(), neighbor_colors.end());
        coloring::Color s = floor_color + 1;
        for (const coloring::Color c : neighbor_colors) {
          if (c == s) {
            ++s;
          } else if (c > s) {
            break;
          }
        }
        col[v] = s;
      }
      if (col[v] == holiday) {
        {
          const std::lock_guard<std::mutex> lock(happy_mutex);
          result.happy_sets[holiday - 1].push_back(v);
        }
        ctx.broadcast({kQuery});
      }
    } else {
      // Reply phase: tell querying neighbors our current color.
      for (const Message& msg : ctx.inbox()) {
        if (msg.payload.size() == 1 && msg.payload[0] == kQuery) {
          ctx.send(msg.from, {kColorReply, col[v]});
        }
      }
    }
  });

  for (std::uint64_t r = 0; r < 2 * holidays; ++r) {
    net.step();
  }

  for (auto& happy : result.happy_sets) {
    std::sort(happy.begin(), happy.end());
  }
  result.final_colors = coloring::Coloring(std::vector<coloring::Color>(col.begin(), col.end()));
  result.stats = net.stats();
  return result;
}

}  // namespace fhg::distributed
