#include "fhg/distributed/network.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "fhg/parallel/parallel_for.hpp"

namespace fhg::distributed {

std::uint32_t RoundContext::degree() const noexcept {
  return net_.graph().degree(self_);
}

std::span<const graph::NodeId> RoundContext::neighbors() const noexcept {
  return net_.graph().neighbors(self_);
}

void RoundContext::send(graph::NodeId to, std::vector<std::uint64_t> payload) {
  if (!net_.graph().has_edge(self_, to)) {
    throw std::invalid_argument("RoundContext::send: destination is not a neighbor (LOCAL model)");
  }
  outbox_.emplace_back(to, std::move(payload));
}

void RoundContext::broadcast(const std::vector<std::uint64_t>& payload) {
  for (const graph::NodeId to : neighbors()) {
    outbox_.emplace_back(to, payload);
  }
}

SyncNetwork::SyncNetwork(const graph::Graph& g, std::uint64_t seed, parallel::ThreadPool* pool)
    : graph_(&g),
      seed_(seed),
      pool_(pool),
      inboxes_(g.num_nodes()),
      halted_(g.num_nodes(), false),
      active_count_(g.num_nodes()) {}

graph::NodeId SyncNetwork::step() {
  if (!handler_) {
    throw std::logic_error("SyncNetwork::step: no handler installed");
  }
  const graph::NodeId n = num_nodes();

  // Phase 1: execute all active nodes against this round's inboxes.
  // Each context is private to its node, so execution order is irrelevant.
  std::vector<std::unique_ptr<RoundContext>> contexts(n);
  auto run_node = [&](std::size_t v_index) {
    const auto v = static_cast<graph::NodeId>(v_index);
    if (halted_[v]) {
      return;
    }
    parallel::Rng rng(parallel::mix_keys(seed_, round_), v);
    contexts[v] = std::unique_ptr<RoundContext>(
        new RoundContext(*this, v, round_, inboxes_[v], rng));
    handler_(*contexts[v]);
  };
  if (pool_ != nullptr) {
    parallel::parallel_for(*pool_, 0, n, run_node, /*grain=*/256);
  } else {
    for (graph::NodeId v = 0; v < n; ++v) {
      run_node(v);
    }
  }

  // Phase 2: deterministic merge — collect outboxes in ascending sender id,
  // apply halts, and stage inboxes for the next round.
  std::vector<std::vector<Message>> next(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    if (!contexts[v]) {
      continue;
    }
    RoundContext& ctx = *contexts[v];
    for (auto& [to, payload] : ctx.outbox_) {
      stats_.messages += 1;
      stats_.words += payload.size();
      next[to].push_back(Message{v, std::move(payload)});
    }
    if (ctx.halted_) {
      halted_[v] = true;
      --active_count_;
    }
  }
  inboxes_ = std::move(next);
  ++round_;
  ++stats_.rounds;
  return active_count_;
}

std::uint64_t SyncNetwork::run(std::uint64_t max_rounds) {
  std::uint64_t executed = 0;
  while (active_count_ > 0) {
    if (executed >= max_rounds) {
      throw std::runtime_error("SyncNetwork::run: round cap reached with " +
                               std::to_string(active_count_) + " nodes still active");
    }
    step();
    ++executed;
  }
  return executed;
}

}  // namespace fhg::distributed
