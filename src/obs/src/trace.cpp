#include "fhg/obs/trace.hpp"

#include <algorithm>

namespace fhg::obs {
namespace {

// Min-heap order: the fastest (smallest total_us) sample sits at the front.
bool slower(const TraceSample& a, const TraceSample& b) noexcept {
  return a.total_us > b.total_us;
}

}  // namespace

void TraceRing::offer(const TraceSample& sample) {
  if (capacity_ == 0) {
    return;
  }
  // Fast reject: once the ring is full, samples at or below the floor
  // cannot displace anything.  floor_ only ever rises, so a stale read can
  // cause a useless lock acquisition but never a missed qualifying sample.
  if (sample.total_us <= floor_.load(std::memory_order_relaxed)) {
    return;
  }
  const std::lock_guard lock(mutex_);
  if (entries_.size() < capacity_) {
    entries_.push_back(sample);
    std::push_heap(entries_.begin(), entries_.end(), slower);
    if (entries_.size() == capacity_) {
      floor_.store(entries_.front().total_us, std::memory_order_relaxed);
    }
    return;
  }
  if (sample.total_us <= entries_.front().total_us) {
    return;  // raced with another displacement; no longer qualifies
  }
  std::pop_heap(entries_.begin(), entries_.end(), slower);
  entries_.back() = sample;
  std::push_heap(entries_.begin(), entries_.end(), slower);
  floor_.store(entries_.front().total_us, std::memory_order_relaxed);
}

std::vector<TraceSample> TraceRing::snapshot() const {
  std::vector<TraceSample> out;
  {
    const std::lock_guard lock(mutex_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(), [](const TraceSample& a, const TraceSample& b) {
    if (a.total_us != b.total_us) {
      return a.total_us > b.total_us;
    }
    return a.trace_id < b.trace_id;
  });
  return out;
}

void TraceRing::clear() {
  const std::lock_guard lock(mutex_);
  entries_.clear();
  floor_.store(0, std::memory_order_relaxed);
}

}  // namespace fhg::obs
