#include "fhg/obs/format.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>

namespace fhg::obs {
namespace {

/// Splits `fhg_x_total{shard="0"}` into base `fhg_x_total` and label body
/// `shard="0"`.  Names without a label suffix yield an empty label body.
struct SplitName {
  std::string_view base;
  std::string_view labels;
};

SplitName split_name(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace), name.substr(brace + 1, name.size() - brace - 2)};
}

void append_labels(std::string& out, std::string_view labels, std::string_view extra) {
  if (labels.empty() && extra.empty()) {
    return;
  }
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) {
    out += ',';
  }
  out += extra;
  out += '}';
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  out += buf;
}

void append_i64(std::string& out, std::int64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out += buf;
}

const char* type_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

/// Midpoint of a bucket, used to approximate `_sum`.  The top (clamped)
/// bucket contributes its floor — a lower bound is the honest choice when
/// the true values are unknown.
std::uint64_t bucket_midpoint(std::size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  if (bucket + 1 == Histogram::kBuckets) {
    return Histogram::bucket_floor(bucket);
  }
  return (Histogram::bucket_floor(bucket) + Histogram::bucket_ceiling(bucket) - 1) / 2;
}

void prometheus_histogram(std::string& out, const SplitName& name, const Histogram& hist) {
  std::uint64_t cumulative = 0;
  std::uint64_t approx_sum = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    cumulative += hist.buckets[b];
    approx_sum += hist.buckets[b] * bucket_midpoint(b);
    if (hist.buckets[b] == 0 && b + 1 != Histogram::kBuckets) {
      continue;  // elide interior empty buckets; cumulative counts stay exact
    }
    out += name.base;
    out += "_bucket";
    std::string le = "le=\"";
    // Integer-valued observations: bucket b covers values <= 2^b - 1.
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(Histogram::bucket_ceiling(b) - 1));
    le += buf;
    le += '"';
    append_labels(out, name.labels, le);
    out += ' ';
    append_u64(out, cumulative);
    out += '\n';
  }
  out += name.base;
  out += "_bucket";
  append_labels(out, name.labels, "le=\"+Inf\"");
  out += ' ';
  append_u64(out, cumulative);
  out += '\n';

  out += name.base;
  out += "_sum";
  append_labels(out, name.labels, {});
  out += ' ';
  append_u64(out, approx_sum);
  out += '\n';

  out += name.base;
  out += "_count";
  append_labels(out, name.labels, {});
  out += ' ';
  append_u64(out, cumulative);
  out += '\n';
}

}  // namespace

std::string to_prometheus(const std::vector<MetricSample>& samples) {
  std::string out;
  out.reserve(samples.size() * 48);
  std::string_view last_base;
  for (const MetricSample& sample : samples) {
    const SplitName name = split_name(sample.name);
    if (name.base != last_base) {
      // One TYPE line per family; labeled series of the same base share it.
      out += "# TYPE ";
      out += name.base;
      out += ' ';
      out += type_name(sample.kind);
      out += '\n';
      last_base = name.base;
    }
    switch (sample.kind) {
      case MetricKind::kCounter:
        out += sample.name;
        out += ' ';
        append_u64(out, sample.value);
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += sample.name;
        out += ' ';
        append_i64(out, static_cast<std::int64_t>(sample.value));
        out += '\n';
        break;
      case MetricKind::kHistogram:
        if (sample.histogram.saturated()) {
          out += "# WARNING ";
          out += name.base;
          out += " top bucket saturated; tail clipped at ";
          append_u64(out, Histogram::bucket_floor(Histogram::kBuckets - 1));
          out += '\n';
        }
        prometheus_histogram(out, name, sample.histogram);
        break;
    }
  }
  return out;
}

std::string to_text(const std::vector<MetricSample>& samples) {
  std::size_t width = 0;
  for (const MetricSample& sample : samples) {
    width = std::max(width, sample.name.size());
  }
  std::string out;
  out.reserve(samples.size() * (width + 32));
  for (const MetricSample& sample : samples) {
    out += "  ";
    out += sample.name;
    out.append(width - sample.name.size() + 2, ' ');
    switch (sample.kind) {
      case MetricKind::kCounter:
        append_u64(out, sample.value);
        break;
      case MetricKind::kGauge:
        append_i64(out, static_cast<std::int64_t>(sample.value));
        break;
      case MetricKind::kHistogram: {
        const Histogram& hist = sample.histogram;
        out += "count=";
        append_u64(out, hist.total());
        out += " p50=";
        append_u64(out, hist.quantile(0.50));
        out += " p90=";
        append_u64(out, hist.quantile(0.90));
        out += " p99=";
        append_u64(out, hist.quantile(0.99));
        if (hist.saturated()) {
          out += " [saturated]";
        }
        break;
      }
    }
    out += '\n';
  }
  return out;
}

std::string to_text(const std::vector<TraceSample>& traces) {
  std::string out;
  if (traces.empty()) {
    return out;
  }
  out += "  trace             request   kind  queue_us   serve_us   total_us\n";
  char line[128];
  for (const TraceSample& trace : traces) {
    std::snprintf(line, sizeof line, "  %-16llu  %-8llu  %-4u  %-9llu  %-9llu  %llu\n",
                  static_cast<unsigned long long>(trace.trace_id),
                  static_cast<unsigned long long>(trace.request_id),
                  static_cast<unsigned>(trace.kind),
                  static_cast<unsigned long long>(trace.queue_us),
                  static_cast<unsigned long long>(trace.serve_us),
                  static_cast<unsigned long long>(trace.total_us));
    out += line;
  }
  return out;
}

}  // namespace fhg::obs
