#include "fhg/obs/registry.hpp"

#include <algorithm>

namespace fhg::obs {

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second;
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second;
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

HistogramCell& Registry::histogram(std::string_view name) {
  const std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_.try_emplace(std::string(name)).first->second;
}

std::vector<MetricSample> Registry::snapshot() const {
  std::vector<MetricSample> out;
  const std::lock_guard lock(mutex_);
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, MetricKind::kCounter, counter.value(), {}});
  }
  for (const auto& [name, gauge] : gauges_) {
    out.push_back({name, MetricKind::kGauge, static_cast<std::uint64_t>(gauge.value()), {}});
  }
  for (const auto& [name, cell] : histograms_) {
    MetricSample sample{name, MetricKind::kHistogram, 0, cell.snapshot()};
    sample.value = sample.histogram.total();
    out.push_back(std::move(sample));
  }
  // The three maps are each sorted; one merge-sort pass by name keeps the
  // combined snapshot in a canonical order independent of metric kind.
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) { return a.name < b.name; });
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

}  // namespace fhg::obs
