#include "fhg/obs/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace fhg::obs {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("fhg::obs http: " + what + ": " + std::strerror(errno));
}

/// Sends the whole buffer, retrying on EINTR and partial writes.
bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

StatsHttpServer::StatsHttpServer(Render render, StatsHttpOptions options)
    : render_(std::move(render)), path_(std::move(options.path)) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.host.c_str(), &address.sin_addr) != 1) {
    throw std::runtime_error("fhg::obs http: '" + options.host +
                             "' is not a dotted-quad IPv4 address");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw_errno("socket");
  }
  const int enable = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("bind " + options.host + ":" + std::to_string(options.port));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t bound_size = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_size) != 0) {
    const int saved = errno;
    ::close(listen_fd_);
    errno = saved;
    throw_errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
}

StatsHttpServer::~StatsHttpServer() { stop(); }

void StatsHttpServer::serve_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) {
        return;  // listener closed by stop()
      }
      if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) {
        continue;
      }
      return;  // the listener itself is unusable
    }
    // Bound how long a silent client can hold the (single) serve loop.
    timeval timeout{.tv_sec = 2, .tv_usec = 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    serve_client(fd);
    ::close(fd);
  }
}

void StatsHttpServer::serve_client(int fd) {
  // Read until the end of the request head.  Bodies are ignored (a GET has
  // none), and a request head over 8 KiB is rejected by the size cap.
  std::string head;
  char chunk[1024];
  while (head.find("\r\n\r\n") == std::string::npos && head.size() < 8192) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return;  // timeout, reset, or EOF before a full request
    }
    head.append(chunk, static_cast<std::size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const std::size_t method_end = head.find(' ');
  const std::size_t path_end =
      method_end == std::string::npos ? std::string::npos : head.find(' ', method_end + 1);
  const bool is_get = method_end != std::string::npos && head.compare(0, method_end, "GET") == 0;
  std::string path;
  if (is_get && path_end != std::string::npos) {
    path = head.substr(method_end + 1, path_end - method_end - 1);
    // Strip a query string; Prometheus may append one.
    if (const std::size_t query = path.find('?'); query != std::string::npos) {
      path.resize(query);
    }
  }

  std::string response;
  if (is_get && path == path_) {
    const std::string body = render_();
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    response =
        "HTTP/1.1 200 OK\r\n"
        "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
        "Content-Length: " +
        std::to_string(body.size()) +
        "\r\n"
        "Connection: close\r\n"
        "\r\n" +
        body;
  } else {
    response =
        "HTTP/1.1 404 Not Found\r\n"
        "Content-Type: text/plain; charset=utf-8\r\n"
        "Content-Length: 10\r\n"
        "Connection: close\r\n"
        "\r\n"
        "not found\n";
  }
  (void)send_all(fd, response);
}

void StatsHttpServer::stop() {
  // Serialized and blocking, like SocketServer::stop: a second caller waits
  // for the first teardown to finish, then returns.
  const std::lock_guard<std::mutex> lock(stop_mutex_);
  if (stopped_) {
    return;
  }
  stopped_ = true;
  stopping_.store(true, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (thread_.joinable()) {
    thread_.join();
  }
}

}  // namespace fhg::obs
