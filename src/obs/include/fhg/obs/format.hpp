#pragma once

/// \file format.hpp
/// Exposition formatters for registry snapshots and trace rings.
///
/// Two renderings of the same `MetricSample` list:
///
///  - `to_prometheus` produces the Prometheus text exposition format
///    (version 0.0.4): `# TYPE` lines, cumulative `le` buckets for
///    histograms, `_sum`/`_count` series.  Labels baked into metric names
///    (`fhg_service_accepted_total{shard="0"}`) are understood and merged
///    with the `le` label on bucket lines.
///  - `to_text` produces the human-readable table that `fhg_serve` and
///    `engine_server` print at the end of a run — one shared formatter
///    instead of per-binary hand-rolled tables.
///
/// Both flag saturated histograms (observations clamped into the top
/// bucket) explicitly: quantiles over a clipped tail are lower bounds, and
/// silently reporting them as truth is how a tail-latency regression hides.

#include <string>
#include <vector>

#include "fhg/obs/registry.hpp"
#include "fhg/obs/trace.hpp"

namespace fhg::obs {

/// Renders `samples` in the Prometheus text exposition format.
///
/// Counters and gauges become single sample lines; histograms expand into
/// cumulative `_bucket{le="..."}` series (le = 2^i - 1 for the power-of-two
/// buckets, plus `+Inf`), an approximate `_sum` (bucket midpoints — exact
/// sums are not tracked) and an exact `_count`.  A saturated histogram gets
/// a warning comment line, since its tail is clipped at the top bucket.
std::string to_prometheus(const std::vector<MetricSample>& samples);

/// Renders `samples` as an aligned human-readable table: counters and
/// gauges as `name value`, histograms as count plus p50/p90/p99 estimates,
/// with a `[saturated]` marker when the top bucket clipped the tail.
std::string to_text(const std::vector<MetricSample>& samples);

/// Renders a slowest-N trace snapshot as a human-readable table:
/// one row per trace, slowest first, with the per-stage span breakdown.
std::string to_text(const std::vector<TraceSample>& traces);

}  // namespace fhg::obs
