#pragma once

/// \file registry.hpp
/// Lock-free metrics registry: named counters, gauges and histograms.
///
/// Registration is the slow path (mutex-guarded, name-keyed, idempotent) and
/// hands back a stable pointer into a node-based map; recording through that
/// handle is the fast path — one relaxed atomic RMW, no lock, no lookup.
/// Layers register their metrics once at construction, cache the handles,
/// and bump them from hot loops.  `snapshot()` reads everything with relaxed
/// loads into plain `MetricSample`s, sorted by name so two registries that
/// saw the same events produce byte-identical snapshots regardless of
/// registration order.
///
/// Naming convention (see src/obs/README.md): `fhg_<layer>_<name>` with a
/// `_total` suffix for counters, `_bytes`/`_us` unit suffixes where they
/// apply, and Prometheus-style labels baked into the name string itself,
/// e.g. `fhg_service_accepted_total{shard="0"}`.  The registry treats names
/// as opaque; the exposition formatter understands the `{...}` suffix.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fhg/obs/histogram.hpp"

namespace fhg::obs {

/// A monotonically increasing counter.  Relaxed increments: counters are
/// statistics, not synchronization — readers tolerate momentary skew between
/// related counters but each value is always exact.
class Counter {
 public:
  /// Adds `delta` (relaxed; exact under concurrency).
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Adds one.
  void increment() noexcept { add(1); }
  /// The current value (relaxed read).
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A gauge: a value that can go up and down (queue depths, live counts).
class Gauge {
 public:
  /// Overwrites the value (relaxed).
  void set(std::int64_t value) noexcept { value_.store(value, std::memory_order_relaxed); }
  /// Adds `delta`, which may be negative (relaxed; exact under concurrency).
  void add(std::int64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the value to `candidate` if it is larger — an atomic running
  /// maximum (high-water marks: peak connections, deepest queue).
  void record_max(std::int64_t candidate) noexcept {
    std::int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate, std::memory_order_relaxed)) {
    }
  }
  /// The current value (relaxed read).
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// The lock-free recording flavor of `Histogram`: one relaxed atomic
/// increment per observation.  Snapshots into the plain struct; concurrent
/// records during a snapshot may or may not be included (each bucket is
/// individually exact, the cross-bucket view is only approximately a point
/// in time — fine for statistics).
class HistogramCell {
 public:
  /// Counts one observation of `value` (relaxed; each bucket stays exact).
  void record(std::uint64_t value) noexcept {
    buckets_[Histogram::bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Reads every bucket into the plain value type.
  [[nodiscard]] Histogram snapshot() const noexcept {
    Histogram out;
    for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
      out.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

 private:
  std::atomic<std::uint64_t> buckets_[Histogram::kBuckets]{};
};

/// What kind of metric a `MetricSample` carries.  Values are wire tags
/// (serialized by the api codec in GetStats responses): append-only.
enum class MetricKind : std::uint8_t {
  kCounter = 0,    ///< monotonically increasing count
  kGauge = 1,      ///< point-in-time value, may be negative
  kHistogram = 2,  ///< power-of-two bucketed distribution
};

/// A plain point-in-time reading of one metric, suitable for diffing,
/// merging and shipping over the wire.  `value` holds the counter value or
/// the gauge value (two's-complement for negative gauges); `histogram` is
/// empty unless `kind == kHistogram`.
struct MetricSample {
  std::string name;                        ///< full metric name, labels included
  MetricKind kind = MetricKind::kCounter;  ///< what `value`/`histogram` mean
  std::uint64_t value = 0;                 ///< counter / gauge value (two's complement)
  Histogram histogram{};                   ///< buckets; empty unless histogram-kind

  friend bool operator==(const MetricSample&, const MetricSample&) = default;  ///< field-wise
};

/// A named collection of metrics.  One registry per scrape domain: the
/// engine owns one (served over the wire via GetStats, deterministic under a
/// deterministic workload), and `global()` holds process-wide transport
/// metrics (codec bytes, socket frames) that only the /metrics endpoint
/// exposes — kept out of GetStats so serving the stats request does not
/// perturb the stats.
class Registry {
 public:
  Registry() = default;                         ///< an empty registry
  Registry(const Registry&) = delete;           ///< non-copyable (handles are stable refs)
  Registry& operator=(const Registry&) = delete;  ///< non-assignable

  /// Returns the counter registered under `name`, creating it on first use.
  /// The returned reference is stable for the registry's lifetime.
  Counter& counter(std::string_view name);

  /// Returns the gauge registered under `name`, creating it on first use.
  Gauge& gauge(std::string_view name);

  /// Returns the histogram cell registered under `name`, creating it on
  /// first use.
  HistogramCell& histogram(std::string_view name);

  /// Reads every registered metric into plain samples, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// The process-wide registry for transport-layer metrics.
  static Registry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, HistogramCell, std::less<>> histograms_;
};

}  // namespace fhg::obs
