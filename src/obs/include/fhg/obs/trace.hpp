#pragma once

/// \file trace.hpp
/// Request tracing: per-request span records and a slowest-N ring.
///
/// Every request carries a trace id (minted by the client, or accepted from
/// the wire envelope — zero means "untraced").  The service stamps the
/// stages the request passes through — admission, shard queue, engine batch,
/// encode — into a `TraceSample` and offers it to a `TraceRing`, which keeps
/// only the slowest N completed requests.  The ring answers the question a
/// latency histogram cannot: *which* request was slow, and *where* it spent
/// the time.
///
/// The hot-path cost of a non-qualifying request is one relaxed atomic load
/// and a compare: the ring caches its current admission floor so the mutex
/// is only taken for requests that actually displace an entry.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace fhg::obs {

/// One completed request's timing, broken into the spans of its life:
/// time queued on the shard (`queue_us`), time in the worker serving it
/// including the engine batch (`serve_us`), and end-to-end (`total_us`,
/// admission to completion — also covers encode when measured at the
/// transport).  `kind` is the api request kind tag; `request_id` the wire
/// id, so a slow trace can be tied back to a client-side call site.
struct TraceSample {
  std::uint64_t trace_id = 0;    ///< client-minted id (0 = untraced)
  std::uint64_t request_id = 0;  ///< wire frame id the client sent
  std::uint8_t kind = 0;         ///< api request kind tag
  std::uint64_t queue_us = 0;    ///< time queued on the shard FIFO
  std::uint64_t serve_us = 0;    ///< time in the worker, incl. the engine batch
  std::uint64_t total_us = 0;    ///< end to end, admission to completion

  friend bool operator==(const TraceSample&, const TraceSample&) = default;  ///< field-wise
};

/// Keeps the slowest `capacity` trace samples by `total_us`.
///
/// Thread-safe.  `offer` is wait-free for requests faster than the current
/// floor (a relaxed load and a branch); qualifying requests take a mutex to
/// displace the current fastest entry.
class TraceRing {
 public:
  /// Default slowest-N capacity.
  static constexpr std::size_t kDefaultCapacity = 64;

  /// A ring keeping the slowest `capacity` samples (0 keeps nothing).
  explicit TraceRing(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}
  TraceRing(const TraceRing&) = delete;             ///< non-copyable (owns atomics)
  TraceRing& operator=(const TraceRing&) = delete;  ///< non-assignable

  /// Records `sample` if it is among the slowest seen so far.
  void offer(const TraceSample& sample);

  /// The slowest-N samples, sorted slowest first.  Ties broken by trace id
  /// so snapshots are deterministic.
  [[nodiscard]] std::vector<TraceSample> snapshot() const;

  /// Forgets every recorded sample.
  void clear();

  /// The construction-time slowest-N capacity.
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  // Fast-reject threshold: below this total_us a sample cannot qualify.
  // Zero while the ring still has room.
  std::atomic<std::uint64_t> floor_{0};
  mutable std::mutex mutex_;
  // Min-heap by total_us: entries_.front() is the fastest kept sample,
  // i.e. the next to be displaced.
  std::vector<TraceSample> entries_;
};

}  // namespace fhg::obs
