#pragma once

/// \file http.hpp
/// A minimal HTTP/1.1 stats endpoint: GET /metrics, Prometheus text format.
///
/// Hand-rolled over POSIX sockets — the project's wire protocol is binary
/// frames, but Prometheus (and `curl`) speak HTTP, so the exposition
/// endpoint does too.  Deliberately tiny: one accept thread serves each
/// connection inline (scrapes are rare, responses small), every response
/// closes the connection, and a receive timeout bounds how long a silent
/// client can stall the loop.  Anything that is not a GET for the served
/// path gets a 404.  Loopback plaintext, like the frame server — this is an
/// operator port, not an internet-facing one.

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace fhg::obs {

/// Construction-time options of a `StatsHttpServer`.
struct StatsHttpOptions {
  std::string host = "127.0.0.1";  ///< address to bind (loopback by default)
  std::uint16_t port = 0;          ///< port to bind (0 = ephemeral, see `port()`)
  std::string path = "/metrics";   ///< the one path that answers 200
};

/// Serves `render()`'s output as `text/plain` on GET /metrics.
class StatsHttpServer {
 public:
  /// Produces the response body for one scrape (called per request, on the
  /// server thread).  Must be callable until `stop()` returns.
  using Render = std::function<std::string()>;

  /// Binds, listens, and starts the serve loop.  Throws
  /// `std::runtime_error` when the socket cannot be bound.
  explicit StatsHttpServer(Render render, StatsHttpOptions options = {});

  /// Stops serving and joins the server thread.
  ~StatsHttpServer();

  StatsHttpServer(const StatsHttpServer&) = delete;             ///< non-copyable (owns a thread)
  StatsHttpServer& operator=(const StatsHttpServer&) = delete;  ///< non-assignable

  /// The bound port — the ephemeral one the kernel picked when
  /// `options.port` was 0.
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Scrapes served so far (200 responses).
  [[nodiscard]] std::uint64_t scrapes() const noexcept {
    return scrapes_.load(std::memory_order_relaxed);
  }

  /// Stops serving, closes the listener, joins the thread.  Idempotent.
  void stop();

 private:
  void serve_loop();
  void serve_client(int fd);

  Render render_;
  std::string path_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  std::mutex stop_mutex_;  ///< serializes stop(); a second caller blocks until done
  bool stopped_ = false;   ///< guarded by stop_mutex_
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> scrapes_{0};
  std::thread thread_;
};

}  // namespace fhg::obs
