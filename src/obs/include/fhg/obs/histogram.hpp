#pragma once

/// \file histogram.hpp
/// A power-of-two bucketed histogram of unsigned values — the telemetry
/// primitive shared by every layer of the serving stack.
///
/// Promoted out of `fhg::service` (where it counted shard latencies and
/// batch sizes) into `fhg::obs` so the engine, the wire codec and the socket
/// layer can all speak the same distribution type, and so one quantile
/// estimator and one exposition formatter serve them all.  Recording is one
/// `bit_width` and one increment; the struct stays plain — no atomics, no
/// hidden state — so it can be snapshotted, diffed, merged and shipped over
/// the wire with nothing but field access.  (The lock-free recording flavor
/// lives in `fhg::obs::HistogramCell`; it snapshots into this struct.)

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace fhg::obs {

/// A power-of-two bucketed histogram of unsigned values.
///
/// Bucket 0 counts the value 0; bucket `i > 0` counts values in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything at or above
/// `2^(kBuckets-2)`.  That top bucket is a *clamp*: once observations land
/// there the true tail is unknowable, which is why `saturated()` exists —
/// exposition layers must flag clipped tails instead of silently reporting
/// a quantile that is really just the clamp boundary.
struct Histogram {
  /// Number of buckets (values up to ~2^18 resolve exactly; larger clamp).
  static constexpr std::size_t kBuckets = 20;

  /// Per-bucket observation counts.
  std::array<std::uint64_t, kBuckets> buckets{};

  /// The bucket `value` falls into.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive lower bound of `bucket` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  /// Exclusive upper bound of `bucket` (1, 2, 4, 8, ...); the top bucket has
  /// no true upper bound and reports twice its floor for interpolation.
  [[nodiscard]] static constexpr std::uint64_t bucket_ceiling(std::size_t bucket) noexcept {
    return bucket == 0 ? 1 : std::uint64_t{1} << bucket;
  }

  /// Counts one observation of `value`.
  constexpr void record(std::uint64_t value) noexcept { ++buckets[bucket_of(value)]; }

  /// Total number of observations across all buckets.
  [[nodiscard]] constexpr std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t count : buckets) {
      sum += count;
    }
    return sum;
  }

  /// True when observations hit the clamped top bucket: every value at or
  /// above `bucket_floor(kBuckets - 1)` was folded into it, so quantiles
  /// that land there understate the true tail.
  [[nodiscard]] constexpr bool saturated() const noexcept {
    return buckets[kBuckets - 1] != 0;
  }

  /// Estimates the `q`-quantile (`q` clamped to [0, 1]): the value below
  /// which a `q` fraction of observations fall, linearly interpolated inside
  /// the bucket the quantile lands in.  Returns 0 for an empty histogram.
  /// When the quantile lands in the saturated top bucket the estimate is the
  /// bucket floor — a *lower bound* on the truth; check `saturated()`.
  [[nodiscard]] constexpr std::uint64_t quantile(double q) const noexcept {
    const std::uint64_t count = total();
    if (count == 0) {
      return 0;
    }
    q = q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
    // Rank of the wanted observation (1-based, ceiling so q=1 is the max).
    const double exact = q * static_cast<double>(count);
    std::uint64_t rank = static_cast<std::uint64_t>(exact);
    if (static_cast<double>(rank) < exact || rank == 0) {
      ++rank;
    }
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      if (buckets[b] == 0) {
        continue;
      }
      seen += buckets[b];
      if (seen >= rank) {
        if (b + 1 == kBuckets) {
          return bucket_floor(b);  // clamped tail: the floor is all we know
        }
        // Interpolate by the rank's position inside this bucket, clamped to
        // the largest integer the bucket holds (its ceiling is exclusive —
        // bucket 0 holds only the value 0 and must report 0).
        const std::uint64_t into = buckets[b] - (seen - rank);  // 1..buckets[b]
        const double fraction =
            static_cast<double>(into) / static_cast<double>(buckets[b]);
        const std::uint64_t floor = bucket_floor(b);
        const std::uint64_t width = bucket_ceiling(b) - floor;
        std::uint64_t offset = static_cast<std::uint64_t>(fraction * static_cast<double>(width));
        if (offset >= width) {
          offset = width - 1;
        }
        return floor + offset;
      }
    }
    return bucket_floor(kBuckets - 1);  // unreachable: seen == count >= rank
  }

  /// Adds every bucket of `other` into this histogram.
  constexpr void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;
};

}  // namespace fhg::obs
