#pragma once

/// \file wal.hpp
/// `fhg::wal` — per-shard write-ahead logging for the engine's mutation path.
///
/// `Manager` implements `engine::WalSink`: once attached via
/// `Engine::attach_wal`, every committed `ApplyMutations` batch is appended
/// (Elias-coded, CRC-framed) to one of `shards` log files *before* the
/// period table republishes — durable-then-visible.  Restart recovery
/// (`recover()`) loads the newest base snapshot, replays every durable batch
/// through the bulk/in-place path its record names, skips batches the
/// snapshot already contains (per-instance `batch_index` sequence numbers
/// make replay idempotent), truncates torn tails, and leaves the engine
/// byte-identical to an uninterrupted run of the same mutation stream.
/// `compact()` bounds log growth: rotate segments to a new generation, write
/// a fresh base snapshot, delete superseded segments.  See
/// `src/wal/README.md` for the on-disk format.
///
/// Locking: `on_commit` runs under the committing instance's mutex and takes
/// only its shard's mutex (instance mutex → shard mutex, never the reverse).
/// Compaction never holds a shard lock while snapshotting — it rotates
/// first (shard locks only), then snapshots (instance locks only) — so the
/// two paths cannot deadlock; records appended between rotation and snapshot
/// are double-covered and skipped at replay.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/engine/wal_sink.hpp"
#include "fhg/obs/registry.hpp"

namespace fhg::wal {

/// Construction-time knobs of a `Manager`.
struct WalOptions {
  std::string dir;              ///< log directory (created if missing)
  std::size_t shards = 4;       ///< log files appends spread over (min 1)
  /// fsync policy: 0 = never fsync on append (page cache only — survives
  /// kill -9, not power loss), 1 = fsync every append, N = fsync every N
  /// appends per shard.
  std::uint64_t fsync_every = 1;
  /// Auto-compaction: snapshot + truncate after this many appends
  /// (0 = compact only on `compact()` / instance-lifecycle events).
  std::uint64_t compact_every = 0;
};

/// What one `recover()` call did.
struct RecoveryReport {
  bool snapshot_loaded = false;        ///< a base snapshot existed and was restored
  std::uint64_t segments = 0;          ///< log segment files read
  std::uint64_t replayed_batches = 0;  ///< batches re-applied to the engine
  std::uint64_t replayed_commands = 0; ///< commands across those batches
  std::uint64_t skipped_batches = 0;   ///< durable batches the snapshot already held
  std::uint64_t torn_bytes = 0;        ///< torn-tail bytes truncated away
};

/// One decoded durable batch — exposed for the format round-trip tests.
struct DurableBatch {
  std::string instance;
  std::uint64_t batch_index = 0;
  std::uint64_t holiday = 0;
  dynamic::BatchRecord record;
  std::vector<dynamic::MutationCommand> commands;

  friend bool operator==(const DurableBatch&, const DurableBatch&) = default;
};

/// Encodes one batch as a WAL record payload (Elias-coded; no frame).
[[nodiscard]] std::vector<std::uint8_t> encode_batch(const DurableBatch& batch);

/// Decodes one record payload.  Throws `std::runtime_error` on malformed
/// input (defensive, like the snapshot and wire codecs).
[[nodiscard]] DurableBatch decode_batch(std::span<const std::uint8_t> payload);

/// The write-ahead log manager: the concrete `engine::WalSink`.
///
/// Lifecycle: construct over a (possibly empty, possibly crash-leftover)
/// directory, call `recover()` exactly once to bring the engine up to the
/// durable state, then `Engine::attach_wal(&manager)`.  The manager must
/// outlive the engine's use of it; detach (or destroy the engine) first.
class Manager final : public engine::WalSink {
 public:
  /// Binds to `engine` (used by recovery and compaction; metrics register on
  /// `engine.metrics()` under `fhg_wal_*`).  Creates `options.dir` if
  /// missing.  Throws `std::system_error` on filesystem errors.
  Manager(engine::Engine& engine, WalOptions options);

  /// Flushes and closes every open segment; stops the auto-compaction
  /// thread.  Does not compact — a crash-consistent state is left behind by
  /// construction.
  ~Manager() override;

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// True when `dir` holds durable state (a base snapshot or any log
  /// segment) — the "restore instead of build" startup predicate.
  [[nodiscard]] static bool has_state(const std::string& dir);

  [[nodiscard]] const WalOptions& options() const noexcept { return options_; }

  /// Restores the base snapshot (when present) and replays every durable
  /// batch, in per-instance `batch_index` order, through its recorded
  /// routing path.  Torn tails — incomplete or CRC-failing data at the end
  /// of a shard's newest segment — are truncated off and counted; the same
  /// damage in an *older* segment is real corruption and throws
  /// `std::runtime_error`, as do records referencing unknown instances or
  /// leaving sequence gaps.  Call once, before attaching and serving.
  RecoveryReport recover();

  /// Snapshot + truncate: rotates every shard to a new generation, writes
  /// the engine state to `snapshot.fhg` (atomic tmp + rename + dir fsync),
  /// then deletes all pre-rotation segments.  Safe against concurrent
  /// commits (they land in the new generation and replay idempotently).
  void compact();

  // -- engine::WalSink --------------------------------------------------------

  /// Appends the batch to its instance's shard and applies the fsync
  /// policy.  Called by the engine under the instance mutex; throws
  /// `std::system_error` when the write cannot be made durable (the engine
  /// then leaves the batch invisible — see `wal_sink.hpp`).
  void on_commit(const engine::WalCommit& commit) override;

  /// Instance created or erased: compact synchronously, so no surviving
  /// segment ever references a tenant its base snapshot does not know.
  void on_lifecycle() override { compact(); }

  [[nodiscard]] engine::WalSinkStats stats() const override;

 private:
  struct Shard {
    std::mutex mutex;
    int fd = -1;                    ///< open segment, or -1 (opened on demand)
    std::uint64_t generation = 0;   ///< generation of the open segment
    std::uint64_t unsynced = 0;     ///< appends since the last fsync
  };

  /// Registered `fhg_wal_*` handles (engine metrics registry).
  struct Telemetry {
    explicit Telemetry(obs::Registry& registry);
    obs::Counter& appends;
    obs::Counter& append_bytes;
    obs::Counter& fsyncs;
    obs::Counter& compactions;
    obs::Counter& replayed_batches;
    obs::Counter& replayed_commands;
    obs::Counter& skipped_batches;
    obs::Counter& torn_bytes;
    obs::Gauge& live_bytes;          ///< bytes across live segments
    obs::Gauge& segments;            ///< live segment files
    obs::Gauge& last_durable_holiday;
    obs::HistogramCell& append_us;   ///< on_commit wall time (µs)
  };

  /// Shard index of `instance` (stable FNV-1a — not `std::hash`, whose
  /// value may differ across builds while log files persist).
  [[nodiscard]] std::size_t shard_of(std::string_view instance) const noexcept;

  /// Opens (creating) `shard`'s segment at the current generation and
  /// writes the segment header.  Caller holds the shard mutex.
  void open_segment_locked(std::size_t index, Shard& shard);

  /// The auto-compaction thread body.
  void compactor_loop();

  engine::Engine& engine_;
  WalOptions options_;
  Telemetry telemetry_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> generation_{1};  ///< generation new segments open at

  std::mutex compact_mutex_;  ///< serializes compact() bodies

  // Auto-compaction plumbing (active only when options_.compact_every > 0).
  std::mutex compactor_mutex_;
  std::condition_variable compactor_cv_;
  std::uint64_t appends_since_compact_ = 0;
  bool stopping_ = false;
  std::thread compactor_;
};

}  // namespace fhg::wal
