#include "fhg/wal/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <stdexcept>
#include <system_error>

#include "fhg/coding/bitio.hpp"
#include "fhg/coding/crc32.hpp"

namespace fhg::wal {

namespace fs = std::filesystem;

namespace {

constexpr std::array<std::uint8_t, 4> kMagic = {'F', 'H', 'G', 'W'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kSegmentHeaderBytes = 4 + 4 + 8;  // magic, version, generation
constexpr std::size_t kFrameHeaderBytes = 4 + 4;        // payload length, crc32
/// Upper bound on one record's payload — far above any real batch, low
/// enough that a corrupt length field cannot trigger a huge allocation.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 30;

void put_be32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_be64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_be32(out, static_cast<std::uint32_t>(v >> 32));
  put_be32(out, static_cast<std::uint32_t>(v));
}

[[nodiscard]] std::uint32_t get_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

[[nodiscard]] std::uint64_t get_be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(get_be32(p)) << 32) | get_be32(p + 4);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), "wal: " + what);
}

/// write(2) until everything landed (or throw).  A kill -9 mid-call leaves a
/// prefix of the frame in the file — the torn tail recovery truncates.
void full_write(int fd, std::span<const std::uint8_t> bytes, const std::string& what) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + done, bytes.size() - done);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw_errno("write " + what);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& what) {
  if (::fsync(fd) != 0) {
    throw_errno("fsync " + what);
  }
}

/// fsync the directory itself, making renames/unlinks/creations durable.
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw_errno("open dir " + dir);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw_errno("fsync dir " + dir);
  }
}

[[nodiscard]] std::string segment_name(std::size_t shard, std::uint64_t generation) {
  return "wal-" + std::to_string(shard) + "-" + std::to_string(generation) + ".log";
}

constexpr const char* kSnapshotName = "snapshot.fhg";
constexpr const char* kSnapshotTmpName = "snapshot.tmp";

/// One `wal-<shard>-<generation>.log` found on disk.
struct SegmentFile {
  std::size_t shard = 0;
  std::uint64_t generation = 0;
  fs::path path;
};

/// Parses a segment filename; false for anything else in the directory.
bool parse_segment_name(const std::string& name, SegmentFile& out) {
  if (!name.starts_with("wal-") || !name.ends_with(".log")) {
    return false;
  }
  const std::string body = name.substr(4, name.size() - 8);
  const std::size_t dash = body.find('-');
  if (dash == std::string::npos) {
    return false;
  }
  try {
    std::size_t used = 0;
    const std::string shard_text = body.substr(0, dash);
    const std::string gen_text = body.substr(dash + 1);
    out.shard = std::stoull(shard_text, &used);
    if (used != shard_text.size()) {
      return false;
    }
    out.generation = std::stoull(gen_text, &used);
    return used == gen_text.size();
  } catch (const std::exception&) {
    return false;
  }
}

[[nodiscard]] std::vector<SegmentFile> list_segments(const std::string& dir) {
  std::vector<SegmentFile> segments;
  if (!fs::exists(dir)) {
    return segments;
  }
  for (const auto& entry : fs::directory_iterator(dir)) {
    SegmentFile seg;
    if (entry.is_regular_file() && parse_segment_name(entry.path().filename().string(), seg)) {
      seg.path = entry.path();
      segments.push_back(std::move(seg));
    }
  }
  // Deterministic order: shard, then generation.
  std::sort(segments.begin(), segments.end(), [](const SegmentFile& a, const SegmentFile& b) {
    return a.shard != b.shard ? a.shard < b.shard : a.generation < b.generation;
  });
  return segments;
}

[[nodiscard]] std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("wal: cannot read " + path.string());
  }
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return bytes;
}

/// What parsing one segment produced: every complete record, plus where the
/// valid prefix ends (== file size when the segment is fully intact).
struct SegmentParse {
  std::vector<DurableBatch> batches;
  std::uint64_t good_offset = 0;
  bool intact = false;
};

/// Parses `bytes` as a segment.  Incomplete data at the tail comes back as
/// `intact == false` with `good_offset` marking the last whole record — the
/// caller decides whether that is a legal torn tail (newest segment) or
/// corruption (anything older).  Structurally impossible content (wrong
/// magic/version — which no torn *append* can produce) always throws.
SegmentParse parse_segment(std::span<const std::uint8_t> bytes, const SegmentFile& seg) {
  SegmentParse out;
  if (bytes.size() < kSegmentHeaderBytes) {
    // Killed while writing the header of a fresh segment (or previously
    // truncated to zero): no records, everything from offset 0 is tail.
    return out;
  }
  if (!std::equal(kMagic.begin(), kMagic.end(), bytes.begin())) {
    throw std::runtime_error("wal: " + seg.path.string() + " is not a WAL segment (bad magic)");
  }
  const std::uint32_t version = get_be32(bytes.data() + 4);
  if (version != kFormatVersion) {
    throw std::runtime_error("wal: " + seg.path.string() + " has unsupported format version " +
                             std::to_string(version));
  }
  const std::uint64_t generation = get_be64(bytes.data() + 8);
  if (generation != seg.generation) {
    throw std::runtime_error("wal: " + seg.path.string() + " header names generation " +
                             std::to_string(generation));
  }
  std::size_t off = kSegmentHeaderBytes;
  out.good_offset = off;
  while (off < bytes.size()) {
    if (bytes.size() - off < kFrameHeaderBytes) {
      return out;  // partial frame header
    }
    const std::uint64_t length = get_be32(bytes.data() + off);
    const std::uint32_t expected_crc = get_be32(bytes.data() + off + 4);
    if (length == 0 || length > kMaxPayloadBytes ||
        length > bytes.size() - off - kFrameHeaderBytes) {
      return out;  // partial payload (or garbage length — CRC can't vouch)
    }
    const auto payload = bytes.subspan(off + kFrameHeaderBytes, length);
    if (coding::crc32(payload) != expected_crc) {
      return out;  // torn mid-payload
    }
    try {
      out.batches.push_back(decode_batch(payload));
    } catch (const std::exception& e) {
      throw std::runtime_error("wal: " + seg.path.string() + " record at offset " +
                               std::to_string(off) + " passed its checksum but failed to " +
                               "decode: " + e.what());
    }
    off += kFrameHeaderBytes + length;
    out.good_offset = off;
  }
  out.intact = true;
  return out;
}

/// Stable 64-bit FNV-1a — the instance→shard map must survive restarts, so
/// no `std::hash` (its value is implementation-detail).
[[nodiscard]] std::uint64_t fnv1a(std::string_view text) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Microseconds since `start`, saturated at zero.
std::uint64_t elapsed_us(std::chrono::steady_clock::time_point start) {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start);
  return us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0;
}

}  // namespace

// -- Record payload codec -----------------------------------------------------

std::vector<std::uint8_t> encode_batch(const DurableBatch& batch) {
  coding::BitWriter w;
  w.put_uint(batch.instance.size());
  w.put_bytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(batch.instance.data()), batch.instance.size()));
  w.put_uint(batch.batch_index);
  w.put_uint(batch.holiday);
  w.put_bit(batch.record.bulk);
  w.put_uint(batch.commands.size());
  std::uint64_t prev_holiday = 0;
  bool first = true;
  for (const dynamic::MutationCommand& cmd : batch.commands) {
    w.put_uint(static_cast<std::uint64_t>(cmd.op));
    // Stamps are non-decreasing along a log; delta-code all but the first.
    w.put_uint(first ? cmd.holiday : cmd.holiday - prev_holiday);
    prev_holiday = cmd.holiday;
    first = false;
    w.put_uint(cmd.u);
    w.put_uint(cmd.v);
  }
  return w.finish();
}

DurableBatch decode_batch(std::span<const std::uint8_t> payload) {
  coding::BitReader r(payload);
  DurableBatch batch;
  const std::uint64_t name_len = r.get_uint();
  coding::check_count(r, name_len, 8, "wal record name byte");
  batch.instance.resize(name_len);
  r.get_bytes(std::span<std::uint8_t>(reinterpret_cast<std::uint8_t*>(batch.instance.data()),
                                      name_len));
  batch.batch_index = r.get_uint();
  batch.holiday = r.get_uint();
  batch.record.bulk = r.get_bit();
  const std::uint64_t count = r.get_uint();
  // Four codewords of >= 1 bit each per command.
  coding::check_count(r, count, 4, "wal record command");
  if (count > std::numeric_limits<std::uint32_t>::max()) {
    throw std::runtime_error("wal: record claims " + std::to_string(count) + " commands");
  }
  batch.record.size = static_cast<std::uint32_t>(count);
  batch.commands.reserve(count);
  std::uint64_t prev_holiday = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    dynamic::MutationCommand cmd;
    const std::uint64_t op = r.get_uint();
    if (op > static_cast<std::uint64_t>(dynamic::MutationOp::kAddNode)) {
      throw std::runtime_error("wal: unknown mutation op " + std::to_string(op));
    }
    cmd.op = static_cast<dynamic::MutationOp>(op);
    cmd.holiday = (i == 0 ? r.get_uint() : prev_holiday + r.get_uint());
    prev_holiday = cmd.holiday;
    const std::uint64_t u = r.get_uint();
    const std::uint64_t v = r.get_uint();
    if (u > std::numeric_limits<graph::NodeId>::max() ||
        v > std::numeric_limits<graph::NodeId>::max()) {
      throw std::runtime_error("wal: command endpoint out of NodeId range");
    }
    cmd.u = static_cast<graph::NodeId>(u);
    cmd.v = static_cast<graph::NodeId>(v);
    batch.commands.push_back(cmd);
  }
  return batch;
}

// -- Manager ------------------------------------------------------------------

Manager::Telemetry::Telemetry(obs::Registry& registry)
    : appends(registry.counter("fhg_wal_appends_total")),
      append_bytes(registry.counter("fhg_wal_append_bytes_total")),
      fsyncs(registry.counter("fhg_wal_fsyncs_total")),
      compactions(registry.counter("fhg_wal_compactions_total")),
      replayed_batches(registry.counter("fhg_wal_replayed_batches_total")),
      replayed_commands(registry.counter("fhg_wal_replayed_commands_total")),
      skipped_batches(registry.counter("fhg_wal_skipped_batches_total")),
      torn_bytes(registry.counter("fhg_wal_torn_bytes_total")),
      live_bytes(registry.gauge("fhg_wal_live_bytes")),
      segments(registry.gauge("fhg_wal_segments")),
      last_durable_holiday(registry.gauge("fhg_wal_last_durable_holiday")),
      append_us(registry.histogram("fhg_wal_append_us")) {}

Manager::Manager(engine::Engine& engine, WalOptions options)
    : engine_(engine), options_(std::move(options)), telemetry_(engine.metrics()) {
  if (options_.shards == 0) {
    options_.shards = 1;
  }
  std::error_code ec;
  fs::create_directories(options_.dir, ec);
  if (ec) {
    throw std::system_error(ec, "wal: cannot create " + options_.dir);
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  // Never reuse a generation a previous process wrote to: new appends must
  // go to fresh files whatever state recovery finds.
  std::uint64_t max_generation = 0;
  for (const SegmentFile& seg : list_segments(options_.dir)) {
    max_generation = std::max(max_generation, seg.generation);
  }
  generation_.store(max_generation + 1, std::memory_order_relaxed);
  if (options_.compact_every > 0) {
    compactor_ = std::thread([this] { compactor_loop(); });
  }
}

Manager::~Manager() {
  if (compactor_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(compactor_mutex_);
      stopping_ = true;
    }
    compactor_cv_.notify_all();
    compactor_.join();
  }
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->fd >= 0) {
      (void)::fsync(shard->fd);  // best effort; destructors must not throw
      (void)::close(shard->fd);
      shard->fd = -1;
    }
  }
}

bool Manager::has_state(const std::string& dir) {
  if (fs::exists(fs::path(dir) / kSnapshotName)) {
    return true;
  }
  return !list_segments(dir).empty();
}

std::size_t Manager::shard_of(std::string_view instance) const noexcept {
  return static_cast<std::size_t>(fnv1a(instance) % shards_.size());
}

void Manager::open_segment_locked(std::size_t index, Shard& shard) {
  const std::uint64_t generation = generation_.load(std::memory_order_acquire);
  const fs::path path = fs::path(options_.dir) / segment_name(index, generation);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw_errno("create segment " + path.string());
  }
  std::vector<std::uint8_t> header(kMagic.begin(), kMagic.end());
  put_be32(header, kFormatVersion);
  put_be64(header, generation);
  try {
    full_write(fd, header, path.string());
  } catch (...) {
    ::close(fd);
    throw;
  }
  shard.fd = fd;
  shard.generation = generation;
  shard.unsynced = 0;
  telemetry_.segments.add(1);
  telemetry_.live_bytes.add(static_cast<std::int64_t>(header.size()));
}

void Manager::on_commit(const engine::WalCommit& commit) {
  const auto start = std::chrono::steady_clock::now();
  DurableBatch batch;
  batch.instance = std::string(commit.instance);
  batch.batch_index = commit.batch_index;
  batch.holiday = commit.holiday;
  batch.record = commit.record;
  batch.commands.assign(commit.commands.begin(), commit.commands.end());
  const std::vector<std::uint8_t> payload = encode_batch(batch);
  std::vector<std::uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  put_be32(frame, static_cast<std::uint32_t>(payload.size()));
  put_be32(frame, coding::crc32(payload));
  frame.insert(frame.end(), payload.begin(), payload.end());

  Shard& shard = *shards_[shard_of(commit.instance)];
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.fd < 0) {
      open_segment_locked(shard_of(commit.instance), shard);
    }
    full_write(shard.fd, frame, "segment append");
    ++shard.unsynced;
    if (options_.fsync_every > 0 && shard.unsynced >= options_.fsync_every) {
      fsync_or_throw(shard.fd, "segment");
      shard.unsynced = 0;
      telemetry_.fsyncs.increment();
    }
  }
  telemetry_.appends.increment();
  telemetry_.append_bytes.add(frame.size());
  telemetry_.live_bytes.add(static_cast<std::int64_t>(frame.size()));
  telemetry_.last_durable_holiday.record_max(static_cast<std::int64_t>(commit.holiday));
  telemetry_.append_us.record(elapsed_us(start));
  if (options_.compact_every > 0) {
    bool kick = false;
    {
      const std::lock_guard<std::mutex> lock(compactor_mutex_);
      kick = ++appends_since_compact_ >= options_.compact_every;
    }
    if (kick) {
      compactor_cv_.notify_one();
    }
  }
}

RecoveryReport Manager::recover() {
  RecoveryReport report;
  const fs::path dir(options_.dir);

  // A leftover snapshot.tmp is an interrupted compaction: the previous base
  // snapshot (if any) is still authoritative.
  std::error_code ec;
  fs::remove(dir / kSnapshotTmpName, ec);

  if (fs::exists(dir / kSnapshotName)) {
    const std::vector<std::uint8_t> bytes = read_file(dir / kSnapshotName);
    engine_.load_snapshot(bytes);
    report.snapshot_loaded = true;
  }

  // Read every segment; torn tails are legal only in a shard's newest
  // generation (older segments were sealed by a later segment's creation).
  const std::vector<SegmentFile> segments = list_segments(options_.dir);
  std::map<std::size_t, std::uint64_t> newest;  // shard -> max generation on disk
  for (const SegmentFile& seg : segments) {
    newest[seg.shard] = std::max(newest[seg.shard], seg.generation);
  }
  std::vector<DurableBatch> durable;
  std::uint64_t max_generation = 0;
  std::int64_t live_bytes = 0;
  for (const SegmentFile& seg : segments) {
    max_generation = std::max(max_generation, seg.generation);
    const std::vector<std::uint8_t> bytes = read_file(seg.path);
    SegmentParse parsed = parse_segment(bytes, seg);
    if (!parsed.intact) {
      if (seg.generation != newest[seg.shard]) {
        throw std::runtime_error("wal: " + seg.path.string() +
                                 " is damaged mid-log (valid prefix " +
                                 std::to_string(parsed.good_offset) + " of " +
                                 std::to_string(bytes.size()) +
                                 " bytes) but newer segments exist — corruption, not a torn "
                                 "tail; refusing to recover");
      }
      const std::uint64_t torn = bytes.size() - parsed.good_offset;
      // Truncate the tail away so the file replays cleanly forever after
      // (once a newer generation exists it is no longer "newest").
      if (::truncate(seg.path.c_str(), static_cast<off_t>(parsed.good_offset)) != 0) {
        throw_errno("truncate torn tail of " + seg.path.string());
      }
      report.torn_bytes += torn;
      telemetry_.torn_bytes.add(torn);
    }
    live_bytes += static_cast<std::int64_t>(parsed.good_offset);
    ++report.segments;
    for (DurableBatch& batch : parsed.batches) {
      durable.push_back(std::move(batch));
    }
  }
  telemetry_.segments.set(static_cast<std::int64_t>(report.segments));
  telemetry_.live_bytes.set(live_bytes);

  // Replay in per-instance sequence order.  All of one instance's records
  // live in one shard (stable name hash) in append order, but sorting by
  // (instance, batch_index) makes replay independent of shard layout — the
  // index is the authoritative order.
  std::stable_sort(durable.begin(), durable.end(), [](const DurableBatch& a,
                                                      const DurableBatch& b) {
    return a.instance != b.instance ? a.instance < b.instance : a.batch_index < b.batch_index;
  });
  std::string current_instance;
  std::uint64_t have = 0;
  for (const DurableBatch& batch : durable) {
    if (batch.instance != current_instance) {
      const std::shared_ptr<engine::Instance> instance = engine_.find(batch.instance);
      if (!instance) {
        throw std::runtime_error("wal: durable batch references unknown instance '" +
                                 batch.instance + "' (base snapshot predates it?)");
      }
      current_instance = batch.instance;
      have = instance->batch_count();
    }
    if (batch.batch_index < have) {
      ++report.skipped_batches;  // already inside the base snapshot
      telemetry_.skipped_batches.increment();
      continue;
    }
    if (batch.batch_index > have) {
      throw std::runtime_error("wal: instance '" + batch.instance + "' has " +
                               std::to_string(have) + " batches but the next durable record " +
                               "is index " + std::to_string(batch.batch_index) +
                               " — log gap, refusing to recover");
    }
    (void)engine_.wal_replay_batch(batch.instance, batch.commands, batch.record);
    ++have;
    ++report.replayed_batches;
    report.replayed_commands += batch.commands.size();
    telemetry_.replayed_batches.increment();
    telemetry_.replayed_commands.add(batch.commands.size());
    telemetry_.last_durable_holiday.record_max(static_cast<std::int64_t>(batch.holiday));
  }

  generation_.store(max_generation + 1, std::memory_order_release);
  return report;
}

void Manager::compact() {
  const std::lock_guard<std::mutex> compact_lock(compact_mutex_);
  // Phase 1 — rotate: future appends go to generation >= G.  Shard locks
  // only; never held across the snapshot below.
  const std::uint64_t keep_from = generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    if (shard->fd >= 0) {
      (void)::close(shard->fd);
      shard->fd = -1;
    }
  }
  // Phase 2 — base snapshot (instance locks only).  Every record in a
  // pre-rotation segment committed before its shard closed, hence before
  // this snapshot read its instance: the snapshot covers all of them.
  // Records racing into generation-G segments may be double-covered; replay
  // skips them by batch index.
  const std::vector<std::uint8_t> bytes = engine_.snapshot();
  const fs::path dir(options_.dir);
  const fs::path tmp = dir / kSnapshotTmpName;
  const fs::path final_path = dir / kSnapshotName;
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw_errno("create " + tmp.string());
  }
  try {
    full_write(fd, bytes, tmp.string());
    fsync_or_throw(fd, tmp.string());
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    throw std::system_error(ec, "wal: rename " + tmp.string());
  }
  fsync_dir(options_.dir);
  // Phase 3 — drop superseded segments: everything below the rotation
  // point is covered by the snapshot just published.
  for (const SegmentFile& seg : list_segments(options_.dir)) {
    if (seg.generation >= keep_from) {
      continue;
    }
    const std::uint64_t size = fs::file_size(seg.path, ec);
    if (!ec && fs::remove(seg.path, ec) && !ec) {
      telemetry_.segments.add(-1);
      telemetry_.live_bytes.add(-static_cast<std::int64_t>(size));
    }
  }
  fsync_dir(options_.dir);
  telemetry_.compactions.increment();
  {
    const std::lock_guard<std::mutex> lock(compactor_mutex_);
    appends_since_compact_ = 0;
  }
}

void Manager::compactor_loop() {
  std::unique_lock<std::mutex> lock(compactor_mutex_);
  while (true) {
    compactor_cv_.wait(lock, [this] {
      return stopping_ || appends_since_compact_ >= options_.compact_every;
    });
    if (stopping_) {
      return;
    }
    lock.unlock();
    compact();  // resets appends_since_compact_ under the lock
    lock.lock();
  }
}

engine::WalSinkStats Manager::stats() const {
  engine::WalSinkStats stats;
  stats.last_durable_holiday =
      static_cast<std::uint64_t>(telemetry_.last_durable_holiday.value());
  stats.wal_bytes = static_cast<std::uint64_t>(telemetry_.live_bytes.value());
  stats.segments = static_cast<std::uint64_t>(telemetry_.segments.value());
  stats.appends = telemetry_.appends.value();
  stats.fsyncs = telemetry_.fsyncs.value();
  stats.compactions = telemetry_.compactions.value();
  stats.replayed_batches = telemetry_.replayed_batches.value();
  stats.replayed_commands = telemetry_.replayed_commands.value();
  stats.skipped_batches = telemetry_.skipped_batches.value();
  stats.torn_bytes = telemetry_.torn_bytes.value();
  return stats;
}

}  // namespace fhg::wal
