#pragma once

/// \file service.hpp
/// The sharded asynchronous request pipeline over `fhg::engine` — the
/// production implementation of the `fhg::api` protocol.
///
/// `Engine` answers queries synchronously on the caller's thread; the fast
/// path is the *batched* one (`query_batch` amortizes snapshot access and
/// streams each period table with locality), but a front-end receiving one
/// request at a time cannot use it directly.  `Service` closes that gap: it
/// owns N shards, each with a bounded MPSC request queue and one worker
/// thread that drains whatever has accumulated and coalesces it into
/// `QuerySnapshot::query_batch` / `next_gathering_batch` calls — so callers
/// submitting single requests transparently get batched throughput.
///
/// The service executes every `api::Request` kind (it implements
/// `api::Handler`, which is what the in-process and socket transports are
/// written against).  Requests that address an instance are routed to a
/// shard by name hash (`std::hash<std::string_view>`, the same function
/// `InstanceRegistry` shards by), which gives the pipeline its ordering
/// unit: *everything* about one instance — queries, mutations, and since
/// this revision the lifecycle operations `CreateInstance`/`EraseInstance`
/// too — lands in one queue and serializes in submission order.  A query
/// submitted after a create of the same name observes the new tenant; after
/// an erase, a typed `kNotFound`.  Tenancy-wide requests (`ListInstances`,
/// `Snapshot`, `Restore`) route to shard 0 and serialize only with shard-0
/// traffic; the engine's own locking keeps them safe against the rest.
///
/// Admission control is a bounded queue with a typed verdict folded into
/// the protocol's status model: when a shard is at capacity a submission
/// reports `api::StatusCode::kQueueFull` immediately (backpressure the
/// caller can act on) instead of blocking or buffering without bound, and a
/// draining service reports `kStopped`.  `drain()` stops admission,
/// completes everything already accepted, and joins the workers; the
/// destructor drains too.
///
/// ```
/// fhg::service::Service service(engine, {.shards = 4});
/// auto pending = service.is_happy("acme", 7, 123456789);     // future flavor
/// if (pending.accepted()) { bool happy = pending.future.get(); }
/// service.handle(fhg::api::IsHappyRequest{"acme", 7, 1},     // protocol flavor
///                [](fhg::api::Response response) {
///                  if (response.ok()) { /* typed payload */ }
///                });
/// service.drain();                                           // graceful shutdown
/// ```

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <variant>
#include <vector>

#include "fhg/api/handler.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/status.hpp"
#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/obs/trace.hpp"
#include "fhg/service/metrics.hpp"

namespace fhg::service {

/// Why a submission was refused at admission.  Folded into the protocol's
/// unified status vocabulary: the old `Reject` enum is now an alias for
/// `api::StatusCode`, whose `kQueueFull`/`kStopped` members carry the exact
/// semantics (and `api::status_name` the exact spellings) `Reject` had.
using Reject = api::StatusCode;

/// Human-readable reject name ("queue-full", "stopped").  Deprecated alias
/// for `api::status_name`, kept so existing call sites keep compiling.
[[nodiscard]] inline std::string_view reject_name(Reject reject) {
  return api::status_name(reject);
}

/// What one asynchronously served request produced (callback flavor).
template <typename T>
struct Outcome {
  std::optional<T> value;  ///< engaged iff the request succeeded
  std::string error;       ///< failure description; empty on success
  /// The typed failure reason (`kOk` on success) — the same vocabulary the
  /// wire protocol speaks, so callback callers branch without string
  /// matching.
  api::StatusCode code = api::StatusCode::kOk;

  /// True iff the request succeeded and `value` is engaged.
  [[nodiscard]] bool ok() const noexcept { return value.has_value(); }
};

/// Completion callback, invoked exactly once on the shard's worker thread.
/// Callbacks must be fast and must not re-enter the service with a blocking
/// wait (the worker they would wait on is the one running them).
template <typename T>
using Callback = std::function<void(Outcome<T>)>;

/// A future-flavor submission: accepted with a future, or rejected typed.
template <typename T>
struct Submission {
  /// Fulfilled by the shard worker iff `accepted()`.  After a reject the
  /// future holds a broken promise — check `accepted()` before waiting.
  std::future<T> future;
  std::optional<Reject> reject;  ///< engaged iff the request was refused

  /// True iff the request was admitted and `future` will be fulfilled.
  [[nodiscard]] bool accepted() const noexcept { return !reject.has_value(); }
};

/// Construction-time sizing of a `Service`.
struct ServiceOptions {
  std::size_t shards = 4;             ///< shard (worker/queue) count, min 1
  std::size_t queue_capacity = 4096;  ///< per-shard admission bound, min 1
  /// Spawn the shard workers in the constructor.  `false` defers to
  /// `start()`: submissions are admitted (up to capacity) but nothing is
  /// served — useful for tests that need a deterministically full queue.
  bool start = true;
  /// Identity this process reports in the `Hello` handshake (protocol v2).
  /// The cluster router matches it against its configured backend names;
  /// empty is fine for single-process serving.
  std::string backend_id = {};
};

/// The sharded asynchronous serving front-end.  Thread-safe: any thread may
/// submit; each accepted request is completed exactly once (future fulfilled
/// or callback invoked) by its shard's worker, including during `drain()`.
class Service : public api::Handler {
 public:
  /// Builds the front-end over `engine` (not owned; must outlive the
  /// service) and, unless `options.start` is false, spawns one worker
  /// thread per shard.
  explicit Service(engine::Engine& engine, ServiceOptions options = {});

  /// Drains: refuses new work, completes accepted work, joins workers.
  ~Service() override;

  Service(const Service&) = delete;             ///< non-copyable (owns threads)
  Service& operator=(const Service&) = delete;  ///< non-assignable

  /// The options the service was built with (after clamping to minimums).
  [[nodiscard]] const ServiceOptions& options() const noexcept { return options_; }

  /// Number of shards (== worker threads once started).
  [[nodiscard]] std::size_t num_shards() const noexcept { return shards_.size(); }

  /// The shard `instance` routes to: `std::hash<std::string_view>` modulo
  /// the shard count — the same hash `InstanceRegistry` shards by, so one
  /// instance's requests always serialize through one queue.  Tenancy-wide
  /// requests (empty routing key) go to shard 0.
  [[nodiscard]] std::size_t shard_of(std::string_view instance) const noexcept {
    return instance.empty() ? 0 : std::hash<std::string_view>{}(instance) % shards_.size();
  }

  /// Spawns the shard workers if they are not running yet (no-op when the
  /// service was constructed with `options.start == true`).
  void start();

  /// Graceful shutdown: stops admission (subsequent submissions report
  /// `kStopped`), serves every request already accepted, then joins the
  /// workers.  Starts them first if the service never started, so
  /// deferred-start services still complete their backlog.  Idempotent.
  void drain();

  /// True once `drain()` has begun: new submissions will be refused.
  [[nodiscard]] bool stopped() const noexcept {
    return stopped_.load(std::memory_order_acquire);
  }

  // -- The protocol entry point (api::Handler) --------------------------------

  /// Executes any `api::Request` through the owning shard's FIFO and
  /// completes `done` with a typed `api::Response` — including admission
  /// failures, which arrive as `kQueueFull`/`kStopped` responses invoked
  /// synchronously on the calling thread.  `done` runs on the shard worker
  /// otherwise and must not re-enter the service with a blocking wait.
  void handle(api::Request request, api::ResponseCallback done) override;

  /// Context-carrying flavor of `handle`, invoked by the transports: stamps
  /// the request's trace id so the per-stage span clocks (queue wait, serve
  /// time, end-to-end) land in the slowest-trace ring when it is nonzero.
  void handle(api::Request request, const api::RequestContext& context,
              api::ResponseCallback done) override;

  /// Future flavor of `handle`: always yields a response (rejects included,
  /// as typed statuses — the future never holds a broken promise).
  [[nodiscard]] std::future<api::Response> submit(api::Request request);

  // -- Typed single-call flavors (thin shims over the same queue) -------------

  /// Asynchronous membership query: is `v` happy on holiday `t` of
  /// `instance`?  Future flavor; failures (unknown instance, node out of
  /// range, replay limit) surface as `std::runtime_error` on the future.
  [[nodiscard]] Submission<bool> is_happy(std::string instance, graph::NodeId v, std::uint64_t t);

  /// Callback-flavor membership query: `done` receives the `Outcome` on the
  /// shard worker.  Returns the reject reason if refused (then `done` is
  /// never invoked), nullopt if accepted.
  std::optional<Reject> is_happy(std::string instance, graph::NodeId v, std::uint64_t t,
                                 Callback<bool> done);

  /// Asynchronous next-gathering query: first happy holiday of `v` strictly
  /// after `after`, or `engine::kNoGathering` when an aperiodic search gives
  /// up.  Future flavor.
  [[nodiscard]] Submission<std::uint64_t> next_gathering(std::string instance, graph::NodeId v,
                                                         std::uint64_t after);

  /// Callback-flavor next-gathering query.
  std::optional<Reject> next_gathering(std::string instance, graph::NodeId v, std::uint64_t after,
                                       Callback<std::uint64_t> done);

  /// Asynchronous topology mutation of a dynamic instance.  Routed through
  /// the owning shard's queue, so it serializes against that shard's queries
  /// in submission order; queries of the same instance submitted afterwards
  /// observe the post-mutation schedule.  Future flavor.
  [[nodiscard]] Submission<engine::MutationResult> apply_mutations(
      std::string instance, std::vector<dynamic::MutationCommand> commands);

  /// Callback-flavor topology mutation.
  std::optional<Reject> apply_mutations(std::string instance,
                                        std::vector<dynamic::MutationCommand> commands,
                                        Callback<engine::MutationResult> done);

  /// A consistent copy of every shard's counters (each shard's admission and
  /// serving counters are read under that shard's lock).
  [[nodiscard]] ServiceMetrics metrics() const;

  /// Builds the full stats snapshot `GetStats` serves: the engine registry
  /// (gauges refreshed first) plus every shard's `ShardMetrics` re-expressed
  /// as labeled samples (`fhg_service_accepted_total{shard="0"}` …), sorted
  /// by name; plus the slowest-trace ring.  `options.include_histograms` /
  /// `options.include_traces` drop the timing-dependent parts, leaving a
  /// snapshot that is a deterministic function of the served workload — the
  /// transport-equivalence tests compare those byte for byte.  Thread-safe;
  /// also callable directly (bypassing the queue) by exposition endpoints.
  [[nodiscard]] api::GetStatsResponse stats(const api::GetStatsRequest& options) const;

  /// The ring of slowest traced requests observed so far.
  [[nodiscard]] const obs::TraceRing& traces() const noexcept { return trace_ring_; }

 private:
  using Clock = std::chrono::steady_clock;

  /// How a queued request reports back — exactly one alternative is active.
  /// The typed single-call flavors complete promises/`Outcome` callbacks;
  /// requests that entered through `handle` complete an `api::Response`.
  using Completion =
      std::variant<std::promise<bool>, Callback<bool>, std::promise<std::uint64_t>,
                   Callback<std::uint64_t>, std::promise<engine::MutationResult>,
                   Callback<engine::MutationResult>, api::ResponseCallback>;

  struct Request {
    api::Request body;  ///< the typed request; the variant index is the kind
    std::uint64_t trace_id = 0;    ///< nonzero = report spans to the trace ring
    std::uint64_t request_id = 0;  ///< wire request id (0 for typed flavors)
    Clock::time_point enqueued{};  ///< admission time (span start)
    Clock::time_point dequeued{};  ///< when the worker drained it (queue span end)
    Completion done;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::condition_variable cv;
    std::deque<Request> queue;
    bool stop = false;  ///< set under `mutex` by drain()
    ShardMetrics metrics;
    /// Live queue depth, registered on the engine's registry as
    /// `fhg_service_queue_depth{shard="i"}`.  Maintained as +1 per admit and
    /// −batch per drain, both while the shard mutex is already held.
    obs::Gauge* queue_depth = nullptr;
    std::thread worker;
  };

  /// Admission: route to the owning shard, reject typed when stopped or
  /// full, otherwise enqueue and wake the worker if it may be sleeping.
  /// `request` is consumed only on success — on a reject the caller keeps
  /// it, so `handle` can still deliver the typed reject response.
  std::optional<Reject> enqueue(Request& request);

  /// Per-shard worker: drain the queue, coalesce query runs into batch
  /// calls, serialize mutations and admin requests between them; exit once
  /// stopped and empty.
  void worker_loop(Shard& shard);

  /// Serves one drained batch in submission order.
  void process(Shard& shard, std::deque<Request>& batch);

  /// Coalesces `run` (query requests only) into batched snapshot calls.
  void flush_queries(std::vector<Request*>& run, ShardMetrics& local);

  /// Applies one mutation request through the engine.
  void serve_mutation(Request& request, ShardMetrics& local);

  /// Serves one lifecycle / tenancy-wide request (`CreateInstance`,
  /// `EraseInstance`, `ListInstances`, `Snapshot`, `Restore`) through the
  /// engine's typed entry points.
  void serve_admin(Request& request, ShardMetrics& local);

  /// Completes `request` with (status, value), recording latency as of
  /// `now`.  `make_payload` lifts a value into the matching
  /// `api::ResponsePayload` alternative for protocol-flavor completions.
  template <typename T, typename MakePayload>
  void finish(Request& request, api::Status status, std::optional<T> value,
              Clock::time_point now, ShardMetrics& local, MakePayload make_payload);

  /// Completes an admin request (always protocol-flavor) with `response`.
  void finish_admin(Request& request, api::Response response, Clock::time_point now,
                    ShardMetrics& local);

  /// Offers a completed traced request's spans to the slowest-trace ring
  /// (no-op when `request.trace_id` is zero).
  void offer_trace(const Request& request, Clock::time_point now);

  engine::Engine& engine_;
  ServiceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  obs::TraceRing trace_ring_;  ///< slowest traced requests, fleet-wide
  /// Cached handles into the engine registry for the batch kernels the
  /// service runs directly on held snapshots — that path bypasses
  /// `Engine::query_batch`, so the engine-level batch counters would
  /// otherwise never move under serving load.
  obs::Counter& engine_batches_;
  obs::Counter& engine_batch_probes_;
  obs::HistogramCell& engine_query_batch_us_;
  std::mutex lifecycle_mutex_;  ///< serializes start()/drain()
  bool started_ = false;        ///< guarded by lifecycle_mutex_
  std::atomic<bool> stopped_{false};
};

}  // namespace fhg::service
