#pragma once

/// \file metrics.hpp
/// Plain-struct observability for the sharded service front-end.
///
/// Every shard of a `fhg::service::Service` tracks what flowed through it:
/// how many requests were admitted or refused, how large the coalesced
/// engine batches were, how long requests waited end to end, and how deep
/// the queue ever got.  The structs here are deliberately plain — no atomics
/// and no methods with side effects beyond their own fields — so a caller
/// can snapshot them (`Service::metrics()`), diff two snapshots, ship them
/// to any telemetry system, or print them with nothing but field access.

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace fhg::service {

/// A power-of-two bucketed histogram of unsigned values.
///
/// Bucket 0 counts the value 0; bucket `i > 0` counts values in
/// `[2^(i-1), 2^i)`; the last bucket absorbs everything at or above
/// `2^(kBuckets-2)`.  Recording is one `bit_width` and one increment, so the
/// shard workers can afford it per batch and per request.
struct Histogram {
  /// Number of buckets (values up to ~2^18 resolve exactly; larger clamp).
  static constexpr std::size_t kBuckets = 20;

  /// Per-bucket observation counts.
  std::array<std::uint64_t, kBuckets> buckets{};

  /// The bucket `value` falls into.
  [[nodiscard]] static constexpr std::size_t bucket_of(std::uint64_t value) noexcept {
    const auto width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive lower bound of `bucket` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static constexpr std::uint64_t bucket_floor(std::size_t bucket) noexcept {
    return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
  }

  /// Counts one observation of `value`.
  constexpr void record(std::uint64_t value) noexcept { ++buckets[bucket_of(value)]; }

  /// Total number of observations across all buckets.
  [[nodiscard]] constexpr std::uint64_t total() const noexcept {
    std::uint64_t sum = 0;
    for (const std::uint64_t count : buckets) {
      sum += count;
    }
    return sum;
  }

  /// Adds every bucket of `other` into this histogram.
  constexpr void merge(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      buckets[i] += other.buckets[i];
    }
  }
};

/// Counters for one shard of the service.
///
/// Admission counters (`accepted`, `rejected_*`, `queue_high_water`) are
/// maintained by submitting threads; serving counters (`queries`,
/// `next_gatherings`, `mutations`, `failed`, `batches`, the histograms) by
/// the shard's worker.  `Service::metrics()` returns a consistent copy.
struct ShardMetrics {
  std::uint64_t accepted = 0;          ///< requests admitted to the queue
  std::uint64_t rejected_full = 0;     ///< refused: queue at capacity
  std::uint64_t rejected_stopped = 0;  ///< refused: service draining/stopped
  std::uint64_t queries = 0;           ///< membership requests completed
  std::uint64_t next_gatherings = 0;   ///< next-gathering requests completed
  std::uint64_t mutations = 0;         ///< mutation batches applied
  std::uint64_t admin = 0;             ///< lifecycle / tenancy-wide requests served
  std::uint64_t failed = 0;            ///< requests completed with an error
  std::uint64_t batches = 0;           ///< coalesced engine batch calls
  std::uint64_t queue_high_water = 0;  ///< deepest queue ever observed
  Histogram batch_size;                ///< requests per coalesced batch
  Histogram latency_us;                ///< submit→completion latency (µs)

  /// Accumulates `other` into this struct: counters add, the high-water mark
  /// takes the max, histograms merge bucket-wise.
  constexpr void merge(const ShardMetrics& other) noexcept {
    accepted += other.accepted;
    rejected_full += other.rejected_full;
    rejected_stopped += other.rejected_stopped;
    queries += other.queries;
    next_gatherings += other.next_gatherings;
    mutations += other.mutations;
    admin += other.admin;
    failed += other.failed;
    batches += other.batches;
    queue_high_water =
        queue_high_water > other.queue_high_water ? queue_high_water : other.queue_high_water;
    batch_size.merge(other.batch_size);
    latency_us.merge(other.latency_us);
  }
};

/// A point-in-time copy of every shard's counters.
struct ServiceMetrics {
  /// One entry per shard, in shard order.
  std::vector<ShardMetrics> shards;

  /// Fleet-wide aggregate: counters summed, high-water maxed.
  [[nodiscard]] ShardMetrics totals() const noexcept {
    ShardMetrics sum;
    for (const ShardMetrics& shard : shards) {
      sum.merge(shard);
    }
    return sum;
  }
};

}  // namespace fhg::service
