#pragma once

/// \file metrics.hpp
/// Plain-struct observability for the sharded service front-end.
///
/// Every shard of a `fhg::service::Service` tracks what flowed through it:
/// how many requests were admitted or refused, how large the coalesced
/// engine batches were, how long requests waited end to end, and how deep
/// the queue ever got.  The structs here are deliberately plain — no atomics
/// and no methods with side effects beyond their own fields — so a caller
/// can snapshot them (`Service::metrics()`), diff two snapshots, ship them
/// to any telemetry system, or print them with nothing but field access.
///
/// The histogram type itself was promoted into `fhg::obs` (it now carries a
/// quantile estimator and a saturation flag, and every layer shares it);
/// the alias below keeps the original `fhg::service::Histogram` spelling
/// working for existing callers.

#include <cstdint>
#include <vector>

#include "fhg/obs/histogram.hpp"

namespace fhg::service {

/// The shared power-of-two bucketed histogram (see fhg/obs/histogram.hpp).
using Histogram = obs::Histogram;

/// Counters for one shard of the service.
///
/// Admission counters (`accepted`, `rejected_*`, `queue_high_water`) are
/// maintained by submitting threads; serving counters (`queries`,
/// `next_gatherings`, `mutations`, `failed`, `batches`, the histograms) by
/// the shard's worker.  `Service::metrics()` returns a consistent copy.
struct ShardMetrics {
  std::uint64_t accepted = 0;          ///< requests admitted to the queue
  std::uint64_t rejected_full = 0;     ///< refused: queue at capacity
  std::uint64_t rejected_stopped = 0;  ///< refused: service draining/stopped
  std::uint64_t queries = 0;           ///< membership requests completed
  std::uint64_t next_gatherings = 0;   ///< next-gathering requests completed
  std::uint64_t mutations = 0;         ///< mutation batches applied
  std::uint64_t admin = 0;             ///< lifecycle / tenancy-wide requests served
  std::uint64_t failed = 0;            ///< requests completed with an error
  std::uint64_t batches = 0;           ///< coalesced engine batch calls
  std::uint64_t queue_high_water = 0;  ///< deepest queue ever observed
  Histogram batch_size;                ///< requests per coalesced batch
  Histogram latency_us;                ///< submit→completion latency (µs)

  /// Accumulates `other` into this struct: counters add, the high-water mark
  /// takes the max, histograms merge bucket-wise.
  constexpr void merge(const ShardMetrics& other) noexcept {
    accepted += other.accepted;
    rejected_full += other.rejected_full;
    rejected_stopped += other.rejected_stopped;
    queries += other.queries;
    next_gatherings += other.next_gatherings;
    mutations += other.mutations;
    admin += other.admin;
    failed += other.failed;
    batches += other.batches;
    queue_high_water =
        queue_high_water > other.queue_high_water ? queue_high_water : other.queue_high_water;
    batch_size.merge(other.batch_size);
    latency_us.merge(other.latency_us);
  }

  friend bool operator==(const ShardMetrics&, const ShardMetrics&) = default;
};

/// A point-in-time copy of every shard's counters.
struct ServiceMetrics {
  /// One entry per shard, in shard order.
  std::vector<ShardMetrics> shards;

  /// Fleet-wide aggregate: counters summed, high-water maxed.
  [[nodiscard]] ShardMetrics totals() const noexcept {
    ShardMetrics sum;
    for (const ShardMetrics& shard : shards) {
      sum.merge(shard);
    }
    return sum;
  }

  friend bool operator==(const ServiceMetrics&, const ServiceMetrics&) = default;
};

}  // namespace fhg::service
