#include "fhg/service/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fhg/api/codec.hpp"
#include "fhg/engine/query_batch.hpp"

namespace fhg::service {

namespace {

/// The admission-failure detail carried in protocol-flavor reject responses.
std::string reject_detail(Reject reject) {
  return reject == api::StatusCode::kQueueFull
             ? "the owning shard's queue is at capacity"
             : "the service is draining or has been drained";
}

/// The uniform view `flush_queries` needs of the two query kinds.
struct QueryView {
  std::string_view instance;
  graph::NodeId node = 0;
  std::uint64_t holiday = 0;  ///< queried holiday, or the `after` bound
  bool membership = false;    ///< true = IsHappy, false = NextGathering
};

QueryView view_of(const api::Request& body) {
  if (const auto* q = std::get_if<api::IsHappyRequest>(&body)) {
    return {q->instance, q->node, q->holiday, true};
  }
  const auto& n = std::get<api::NextGatheringRequest>(body);
  return {n.instance, n.node, n.after, false};
}

}  // namespace

Service::Service(engine::Engine& engine, ServiceOptions options)
    : engine_(engine),
      options_(options),
      engine_batches_(engine.metrics().counter("fhg_engine_batches_total")),
      engine_batch_probes_(engine.metrics().counter("fhg_engine_batch_probes_total")),
      engine_query_batch_us_(engine.metrics().histogram("fhg_engine_query_batch_us")) {
  options_.shards = std::max<std::size_t>(options_.shards, 1);
  options_.queue_capacity = std::max<std::size_t>(options_.queue_capacity, 1);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Depth gauges live on the engine's registry so GetStats and /metrics
    // see them alongside the engine counters.
    shards_.back()->queue_depth = &engine_.metrics().gauge(
        "fhg_service_queue_depth{shard=\"" + std::to_string(i) + "\"}");
  }
  if (options_.start) {
    start();
  }
}

Service::~Service() { drain(); }

void Service::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) {
    return;
  }
  started_ = true;
  for (const auto& shard : shards_) {
    shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
  }
}

void Service::drain() {
  // Deferred-start services still owe completions for everything accepted:
  // bring the workers up so the backlog is served before the stop lands.
  start();
  // Joining under the lifecycle lock makes drain idempotent *and* blocking:
  // a second caller waits until the first drain has finished.  Workers never
  // take this lock, so there is no deadlock path.
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  for (const auto& shard : shards_) {
    {
      // The stop flag must move under the shard mutex: a worker that just
      // found the queue empty re-checks the flag before sleeping, so the
      // wakeup below cannot slip between its check and its wait.
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (const auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

std::optional<Reject> Service::enqueue(Request& request) {
  Shard& shard = *shards_[shard_of(api::routing_instance(request.body))];
  // Stamped outside the lock: the clock read must not lengthen the critical
  // section every submitter serializes on.
  request.enqueued = Clock::now();
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stop || stopped_.load(std::memory_order_acquire)) {
      ++shard.metrics.rejected_stopped;
      return api::StatusCode::kStopped;
    }
    if (shard.queue.size() >= options_.queue_capacity) {
      ++shard.metrics.rejected_full;
      return api::StatusCode::kQueueFull;
    }
    wake = shard.queue.empty();
    shard.queue.push_back(std::move(request));
    ++shard.metrics.accepted;
    shard.metrics.queue_high_water =
        std::max<std::uint64_t>(shard.metrics.queue_high_water, shard.queue.size());
    shard.queue_depth->add(1);
  }
  if (wake) {
    // Only the empty→non-empty transition can find the worker asleep; every
    // other push happens while it is still draining earlier work.
    shard.cv.notify_one();
  }
  return std::nullopt;
}

void Service::worker_loop(Shard& shard) {
  for (;;) {
    std::deque<Request> batch;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        return;  // stop requested and nothing left: graceful exit
      }
      batch.swap(shard.queue);
      shard.queue_depth->add(-static_cast<std::int64_t>(batch.size()));
    }
    // One clock read stamps the whole drained batch: the queue span of each
    // request ends here, its serve span begins.
    const auto dequeued = Clock::now();
    for (Request& request : batch) {
      request.dequeued = dequeued;
    }
    process(shard, batch);
  }
}

void Service::process(Shard& shard, std::deque<Request>& batch) {
  // Serving counters accumulate locally and merge under the shard lock once
  // per drained batch, so submitters never contend on per-request updates.
  ShardMetrics local;
  std::vector<Request*> run;
  run.reserve(batch.size());
  for (Request& request : batch) {
    switch (request.body.index()) {
      case 0:  // IsHappy
      case 1:  // NextGathering
        run.push_back(&request);
        break;
      case 2:  // ApplyMutations
        // Preserve submission order around the mutation: queries queued
        // before it are answered against the pre-mutation schedule, queries
        // after it against the republished one (each flush takes a fresh
        // snapshot).
        flush_queries(run, local);
        serve_mutation(request, local);
        break;
      default:  // Create / Erase / List / Snapshot / Restore
        // Lifecycle ops serialize through the same FIFO: a query queued
        // after a create of the same name must observe the new tenant, and
        // one queued after an erase must fail typed.
        flush_queries(run, local);
        serve_admin(request, local);
        break;
    }
  }
  flush_queries(run, local);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.metrics.merge(local);
  }
}

void Service::offer_trace(const Request& request, Clock::time_point now) {
  if (request.trace_id == 0) {
    return;
  }
  const auto us = [](Clock::duration d) {
    const auto v = std::chrono::duration_cast<std::chrono::microseconds>(d).count();
    return v > 0 ? static_cast<std::uint64_t>(v) : std::uint64_t{0};
  };
  trace_ring_.offer(obs::TraceSample{
      .trace_id = request.trace_id,
      .request_id = request.request_id,
      .kind = static_cast<std::uint8_t>(request.body.index()),
      .queue_us = us(request.dequeued - request.enqueued),
      .serve_us = us(now - request.dequeued),
      .total_us = us(now - request.enqueued)});
}

template <typename T, typename MakePayload>
void Service::finish(Request& request, api::Status status, std::optional<T> value,
                     Clock::time_point now, ShardMetrics& local, MakePayload make_payload) {
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      now - request.enqueued);
  local.latency_us.record(static_cast<std::uint64_t>(waited.count()));
  if (!status.ok()) {
    ++local.failed;
  }
  offer_trace(request, now);
  if (auto* promise = std::get_if<std::promise<T>>(&request.done)) {
    if (status.ok()) {
      promise->set_value(std::move(*value));
    } else {
      promise->set_exception(std::make_exception_ptr(std::runtime_error(status.detail)));
    }
    return;
  }
  if (auto* callback = std::get_if<Callback<T>>(&request.done)) {
    if (*callback) {
      (*callback)(Outcome<T>{std::move(value), std::move(status.detail), status.code});
    }
    return;
  }
  // Protocol flavor: the completion is an api::ResponseCallback.
  auto& respond = std::get<api::ResponseCallback>(request.done);
  if (respond) {
    api::Response response;
    if (status.ok()) {
      response.payload = make_payload(std::move(*value));
    }
    response.status = std::move(status);
    respond(std::move(response));
  }
}

void Service::finish_admin(Request& request, api::Response response, Clock::time_point now,
                           ShardMetrics& local) {
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      now - request.enqueued);
  local.latency_us.record(static_cast<std::uint64_t>(waited.count()));
  if (!response.ok()) {
    ++local.failed;
  }
  offer_trace(request, now);
  // Admin kinds are only reachable through `handle`, so the completion is
  // always the protocol flavor.
  auto& respond = std::get<api::ResponseCallback>(request.done);
  if (respond) {
    respond(std::move(response));
  }
}

void Service::flush_queries(std::vector<Request*>& run, ShardMetrics& local) {
  if (run.empty()) {
    return;
  }
  const auto snapshot = engine_.query_snapshot();
  ++local.batches;
  local.batch_size.record(run.size());
  const auto make_happy = [](bool happy) { return api::IsHappyResponse{happy}; };
  const auto make_next = [](std::uint64_t holiday) {
    return api::NextGatheringResponse{holiday};
  };
  // Resolve and validate each request individually, so one unknown instance
  // or out-of-range node fails that request alone instead of poisoning the
  // whole coalesced batch (the kernels throw on any invalid probe).
  const auto fail_query = [&](Request& request, const QueryView& view, api::Status status) {
    const auto now = Clock::now();
    if (view.membership) {
      finish<bool>(request, std::move(status), std::nullopt, now, local, make_happy);
      ++local.queries;
    } else {
      finish<std::uint64_t>(request, std::move(status), std::nullopt, now, local, make_next);
      ++local.next_gatherings;
    }
  };
  std::vector<engine::Probe> member_probes;
  std::vector<Request*> member_requests;
  std::vector<engine::Probe> next_probes;
  std::vector<Request*> next_requests;
  for (Request* request : run) {
    const QueryView view = view_of(request->body);
    const auto id = snapshot->id_of(view.instance);
    if (!id) {
      fail_query(*request, view,
                 api::Status::error(api::StatusCode::kNotFound,
                                    "no instance named '" + std::string(view.instance) + "'"));
      continue;
    }
    if (view.node >= snapshot->num_nodes(*id)) {
      fail_query(*request, view,
                 api::Status::error(api::StatusCode::kInvalidArgument,
                                    "node " + std::to_string(view.node) +
                                        " out of range for instance '" +
                                        std::string(view.instance) + "'"));
      continue;
    }
    const engine::Probe probe{.instance = *id, .node = view.node, .holiday = view.holiday};
    if (view.membership) {
      member_probes.push_back(probe);
      member_requests.push_back(request);
    } else {
      next_probes.push_back(probe);
      next_requests.push_back(request);
    }
  }
  // A batch kernel can fail as a whole (e.g. an aperiodic tenant hitting its
  // replay limit).  Fall back to serving each request singly via the engine
  // so only the offenders fail — with the exception type mapped to the
  // protocol's status vocabulary.
  const auto single_status = [](const std::exception& e) {
    if (dynamic_cast<const std::out_of_range*>(&e) != nullptr) {
      // Pre-validation passed against the snapshot, so an out-of-range here
      // means the tenant vanished between snapshot and fallback.
      return api::Status::error(api::StatusCode::kNotFound, e.what());
    }
    if (dynamic_cast<const std::runtime_error*>(&e) != nullptr) {
      return api::Status::error(api::StatusCode::kResourceExhausted, e.what());
    }
    return api::Status::error(api::StatusCode::kInternal, e.what());
  };
  // The kernel invocations below are the engine's batch pipeline even though
  // they run on a held snapshot: count them on the engine registry exactly
  // as Engine::query_batch would.
  const auto count_kernel = [&](std::size_t probes, Clock::time_point start) {
    engine_batches_.increment();
    engine_batch_probes_.add(probes);
    const auto us =
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - start);
    engine_query_batch_us_.record(us.count() > 0 ? static_cast<std::uint64_t>(us.count()) : 0);
  };
  if (!member_probes.empty()) {
    const auto kernel_start = Clock::now();
    std::vector<std::uint8_t> answers(member_probes.size());
    try {
      snapshot->query_batch(member_probes, answers);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < member_requests.size(); ++i) {
        finish<bool>(*member_requests[i], api::Status::good(), answers[i] != 0, now, local,
                     make_happy);
      }
    } catch (const std::exception&) {
      const auto now = Clock::now();
      for (Request* request : member_requests) {
        const QueryView view = view_of(request->body);
        try {
          const bool happy = engine_.is_happy(view.instance, view.node, view.holiday);
          finish<bool>(*request, api::Status::good(), happy, now, local, make_happy);
        } catch (const std::exception& single) {
          finish<bool>(*request, single_status(single), std::nullopt, now, local, make_happy);
        }
      }
    }
    local.queries += member_requests.size();
    count_kernel(member_probes.size(), kernel_start);
  }
  if (!next_probes.empty()) {
    const auto kernel_start = Clock::now();
    std::vector<std::uint64_t> answers(next_probes.size());
    try {
      snapshot->next_gathering_batch(next_probes, answers);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < next_requests.size(); ++i) {
        finish<std::uint64_t>(*next_requests[i], api::Status::good(), answers[i], now, local,
                              make_next);
      }
    } catch (const std::exception&) {
      const auto now = Clock::now();
      for (Request* request : next_requests) {
        const QueryView view = view_of(request->body);
        try {
          const auto next = engine_.next_gathering(view.instance, view.node, view.holiday);
          finish<std::uint64_t>(*request, api::Status::good(),
                                next.value_or(engine::kNoGathering), now, local, make_next);
        } catch (const std::exception& single) {
          finish<std::uint64_t>(*request, single_status(single), std::nullopt, now, local,
                                make_next);
        }
      }
    }
    local.next_gatherings += next_requests.size();
    count_kernel(next_probes.size(), kernel_start);
  }
  run.clear();
}

void Service::serve_mutation(Request& request, ShardMetrics& local) {
  ++local.mutations;
  auto& mutate = std::get<api::ApplyMutationsRequest>(request.body);
  const auto make_payload = [](engine::MutationResult result) {
    return api::ApplyMutationsResponse{result.applied, result.recolors, result.table_version};
  };
  api::Status status;
  std::optional<engine::MutationResult> result;
  try {
    result = engine_.apply_mutations(mutate.instance, mutate.commands);
  } catch (const std::out_of_range& e) {
    status = api::Status::error(api::StatusCode::kNotFound, e.what());
  } catch (const std::invalid_argument& e) {
    status = api::Status::error(api::StatusCode::kInvalidArgument, e.what());
  } catch (const std::logic_error& e) {
    // Engine::apply_mutations throws logic_error for non-dynamic tenants.
    status = api::Status::error(api::StatusCode::kFailedPrecondition, e.what());
  } catch (const std::exception& e) {
    status = api::Status::error(api::StatusCode::kInternal, e.what());
  }
  finish<engine::MutationResult>(request, std::move(status), std::move(result), Clock::now(),
                                 local, make_payload);
}

void Service::serve_admin(Request& request, ShardMetrics& local) {
  ++local.admin;
  api::Response response;
  if (auto* create = std::get_if<api::CreateInstanceRequest>(&request.body)) {
    try {
      graph::Graph g = graph::Graph::from_edges(create->nodes, create->edges);
      api::Status status = engine_.try_create_instance(std::move(create->instance),
                                                       std::move(g), std::move(create->spec));
      if (status.ok()) {
        response.payload = api::CreateInstanceResponse{};
      }
      response.status = std::move(status);
    } catch (const std::invalid_argument& e) {
      // Graph::from_edges rejects self-loops and out-of-range endpoints.
      response = api::Response::error(api::StatusCode::kInvalidArgument, e.what());
    } catch (const std::bad_alloc&) {
      // The codec admits node counts up to the NodeId range; a request
      // asking for a graph this machine cannot hold must fail typed, not
      // escape the shard worker and terminate the server.
      response = api::Response::error(api::StatusCode::kResourceExhausted,
                                      "instance too large to allocate");
    } catch (const std::exception& e) {
      response = api::Response::error(api::StatusCode::kInternal, e.what());
    }
  } else if (const auto* erase = std::get_if<api::EraseInstanceRequest>(&request.body)) {
    api::Status status = engine_.erase_instance(erase->instance);
    if (status.ok()) {
      response.payload = api::EraseInstanceResponse{};
    }
    response.status = std::move(status);
  } else if (std::holds_alternative<api::ListInstancesRequest>(request.body)) {
    api::ListInstancesResponse list;
    const auto instances = engine_.registry().all_sorted();
    list.instances.reserve(instances.size());
    for (const auto& instance : instances) {
      list.instances.push_back(api::InstanceInfo{.name = instance->name(),
                                                 .kind = instance->spec().kind,
                                                 .nodes = instance->num_nodes(),
                                                 .periodic = instance->periodic(),
                                                 .dynamic = instance->dynamic()});
    }
    response.payload = std::move(list);
  } else if (std::holds_alternative<api::SnapshotRequest>(request.body)) {
    try {
      response.payload = api::SnapshotResponse{engine_.snapshot()};
    } catch (const std::exception& e) {
      response = api::Response::error(api::StatusCode::kInternal, e.what());
    }
  } else if (const auto* get_stats = std::get_if<api::GetStatsRequest>(&request.body)) {
    try {
      response.payload = stats(*get_stats);
    } catch (const std::exception& e) {
      response = api::Response::error(api::StatusCode::kInternal, e.what());
    }
  } else if (std::holds_alternative<api::RecoverInfoRequest>(request.body)) {
    api::RecoverInfoResponse info;
    if (const engine::WalSink* sink = engine_.wal_sink()) {
      const engine::WalSinkStats stats = sink->stats();
      info.wal_enabled = true;
      info.last_durable_holiday = stats.last_durable_holiday;
      info.wal_bytes = stats.wal_bytes;
      info.segments = stats.segments;
      info.appends = stats.appends;
      info.fsyncs = stats.fsyncs;
      info.compactions = stats.compactions;
      info.replayed_batches = stats.replayed_batches;
      info.replayed_commands = stats.replayed_commands;
      info.skipped_batches = stats.skipped_batches;
      info.torn_bytes = stats.torn_bytes;
    }
    // Served with or without a WAL: the applied-batch count is the sequence
    // point a deterministic mutation driver resumes from after a crash.
    for (const auto& instance : engine_.registry().all_sorted()) {
      info.durable_batches += instance->batch_count();
    }
    response.payload = info;
  } else if (std::holds_alternative<api::HelloRequest>(request.body)) {
    response.payload = api::HelloResponse{.backend = options_.backend_id,
                                          .min_version = api::kMinSupportedVersion,
                                          .max_version = api::kProtocolVersion};
  } else if (const auto* snap_one = std::get_if<api::SnapshotInstanceRequest>(&request.body)) {
    api::SnapshotInstanceResponse payload;
    api::Status status = engine_.snapshot_instance(snap_one->instance, payload.bytes);
    if (status.ok()) {
      response.payload = std::move(payload);
    }
    response.status = std::move(status);
  } else if (auto* adopt = std::get_if<api::RestoreInstanceRequest>(&request.body)) {
    bool replaced = false;
    api::Status status = engine_.adopt_instance(adopt->bytes, adopt->instance, &replaced);
    if (status.ok()) {
      response.payload = api::RestoreInstanceResponse{replaced};
    }
    response.status = std::move(status);
  } else if (std::holds_alternative<api::DrainBackendRequest>(request.body)) {
    // Drain is a router verb: it reshapes a ring this process is merely a
    // member of.  Answer typed so a misrouted client learns it dialed a
    // backend, not the router.
    response = api::Response::error(api::StatusCode::kFailedPrecondition,
                                    "drain-backend addresses a cluster router; this is a "
                                    "backend ('" +
                                        options_.backend_id + "')");
  } else {
    const auto& restore = std::get<api::RestoreRequest>(request.body);
    try {
      engine_.load_snapshot(restore.bytes);
      response.payload = api::RestoreResponse{engine_.num_instances()};
    } catch (const std::exception& e) {
      // restore_registry parses the whole stream before touching the
      // registry, so a malformed snapshot leaves the old tenancy in place.
      response = api::Response::error(api::StatusCode::kInvalidArgument, e.what());
    }
  }
  finish_admin(request, std::move(response), Clock::now(), local);
}

void Service::handle(api::Request request, api::ResponseCallback done) {
  handle(std::move(request), api::RequestContext{}, std::move(done));
}

void Service::handle(api::Request request, const api::RequestContext& context,
                     api::ResponseCallback done) {
  Request internal{.body = std::move(request),
                   .trace_id = context.trace_id,
                   .request_id = context.request_id,
                   .done = std::move(done)};
  if (const auto reject = enqueue(internal)) {
    // The unified contract: rejects are typed responses too, delivered
    // synchronously on the submitting thread.
    auto& respond = std::get<api::ResponseCallback>(internal.done);
    if (respond) {
      respond(api::Response::error(*reject, reject_detail(*reject)));
    }
  }
}

std::future<api::Response> Service::submit(api::Request request) {
  auto promise = std::make_shared<std::promise<api::Response>>();
  std::future<api::Response> future = promise->get_future();
  handle(std::move(request),
         [promise](api::Response response) { promise->set_value(std::move(response)); });
  return future;
}

Submission<bool> Service::is_happy(std::string instance, graph::NodeId v, std::uint64_t t) {
  std::promise<bool> promise;
  Submission<bool> submission{.future = promise.get_future(), .reject = std::nullopt};
  Request request{.body = api::IsHappyRequest{std::move(instance), v, t},
                  .done = std::move(promise)};
  submission.reject = enqueue(request);
  return submission;
}

std::optional<Reject> Service::is_happy(std::string instance, graph::NodeId v, std::uint64_t t,
                                        Callback<bool> done) {
  Request request{.body = api::IsHappyRequest{std::move(instance), v, t},
                  .done = std::move(done)};
  return enqueue(request);
}

Submission<std::uint64_t> Service::next_gathering(std::string instance, graph::NodeId v,
                                                  std::uint64_t after) {
  std::promise<std::uint64_t> promise;
  Submission<std::uint64_t> submission{.future = promise.get_future(), .reject = std::nullopt};
  Request request{.body = api::NextGatheringRequest{std::move(instance), v, after},
                  .done = std::move(promise)};
  submission.reject = enqueue(request);
  return submission;
}

std::optional<Reject> Service::next_gathering(std::string instance, graph::NodeId v,
                                              std::uint64_t after, Callback<std::uint64_t> done) {
  Request request{.body = api::NextGatheringRequest{std::move(instance), v, after},
                  .done = std::move(done)};
  return enqueue(request);
}

Submission<engine::MutationResult> Service::apply_mutations(
    std::string instance, std::vector<dynamic::MutationCommand> commands) {
  std::promise<engine::MutationResult> promise;
  Submission<engine::MutationResult> submission{.future = promise.get_future(),
                                                .reject = std::nullopt};
  Request request{.body = api::ApplyMutationsRequest{std::move(instance), std::move(commands)},
                  .done = std::move(promise)};
  submission.reject = enqueue(request);
  return submission;
}

std::optional<Reject> Service::apply_mutations(std::string instance,
                                               std::vector<dynamic::MutationCommand> commands,
                                               Callback<engine::MutationResult> done) {
  Request request{.body = api::ApplyMutationsRequest{std::move(instance), std::move(commands)},
                  .done = std::move(done)};
  return enqueue(request);
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.shards.push_back(shard->metrics);
  }
  return out;
}

api::GetStatsResponse Service::stats(const api::GetStatsRequest& options) const {
  engine_.refresh_gauges();
  api::GetStatsResponse out;
  out.metrics = engine_.metrics().snapshot();
  // Re-express each shard's plain-struct counters as labeled samples, so the
  // wire carries one uniform metric vocabulary.
  const ServiceMetrics service = metrics();
  const auto counter = [&](std::string name, std::size_t shard, std::uint64_t value) {
    name += "{shard=\"" + std::to_string(shard) + "\"}";
    out.metrics.push_back(obs::MetricSample{
        .name = std::move(name), .kind = obs::MetricKind::kCounter, .value = value});
  };
  for (std::size_t i = 0; i < service.shards.size(); ++i) {
    const ShardMetrics& shard = service.shards[i];
    counter("fhg_service_accepted_total", i, shard.accepted);
    counter("fhg_service_admin_total", i, shard.admin);
    counter("fhg_service_batches_total", i, shard.batches);
    counter("fhg_service_failed_total", i, shard.failed);
    counter("fhg_service_mutations_total", i, shard.mutations);
    counter("fhg_service_next_gatherings_total", i, shard.next_gatherings);
    counter("fhg_service_queries_total", i, shard.queries);
    counter("fhg_service_rejected_full_total", i, shard.rejected_full);
    counter("fhg_service_rejected_stopped_total", i, shard.rejected_stopped);
    out.metrics.push_back(obs::MetricSample{
        .name = "fhg_service_queue_high_water{shard=\"" + std::to_string(i) + "\"}",
        .kind = obs::MetricKind::kGauge,
        .value = shard.queue_high_water});
    if (options.include_histograms) {
      const auto histogram = [&](std::string name, const Histogram& h) {
        name += "{shard=\"" + std::to_string(i) + "\"}";
        out.metrics.push_back(obs::MetricSample{.name = std::move(name),
                                                .kind = obs::MetricKind::kHistogram,
                                                .value = h.total(),
                                                .histogram = h});
      };
      histogram("fhg_service_batch_size", shard.batch_size);
      histogram("fhg_service_latency_us", shard.latency_us);
    }
  }
  if (!options.include_histograms) {
    std::erase_if(out.metrics, [](const obs::MetricSample& sample) {
      return sample.kind == obs::MetricKind::kHistogram;
    });
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) { return a.name < b.name; });
  if (options.include_traces) {
    out.traces = trace_ring_.snapshot();
  }
  return out;
}

}  // namespace fhg::service
