#include "fhg/service/service.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "fhg/engine/query_batch.hpp"

namespace fhg::service {

std::string_view reject_name(Reject reject) {
  switch (reject) {
    case Reject::kQueueFull:
      return "queue-full";
    case Reject::kStopped:
      return "stopped";
  }
  return "unknown";
}

Service::Service(engine::Engine& engine, ServiceOptions options)
    : engine_(engine), options_(options) {
  options_.shards = std::max<std::size_t>(options_.shards, 1);
  options_.queue_capacity = std::max<std::size_t>(options_.queue_capacity, 1);
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.start) {
    start();
  }
}

Service::~Service() { drain(); }

void Service::start() {
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (started_) {
    return;
  }
  started_ = true;
  for (const auto& shard : shards_) {
    shard->worker = std::thread([this, &shard = *shard] { worker_loop(shard); });
  }
}

void Service::drain() {
  // Deferred-start services still owe completions for everything accepted:
  // bring the workers up so the backlog is served before the stop lands.
  start();
  // Joining under the lifecycle lock makes drain idempotent *and* blocking:
  // a second caller waits until the first drain has finished.  Workers never
  // take this lock, so there is no deadlock path.
  const std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  for (const auto& shard : shards_) {
    {
      // The stop flag must move under the shard mutex: a worker that just
      // found the queue empty re-checks the flag before sleeping, so the
      // wakeup below cannot slip between its check and its wait.
      const std::lock_guard<std::mutex> shard_lock(shard->mutex);
      shard->stop = true;
    }
    shard->cv.notify_all();
  }
  for (const auto& shard : shards_) {
    if (shard->worker.joinable()) {
      shard->worker.join();
    }
  }
}

std::optional<Reject> Service::enqueue(Request request) {
  Shard& shard = *shards_[shard_of(request.instance)];
  // Stamped outside the lock: the clock read must not lengthen the critical
  // section every submitter serializes on.
  request.enqueued = Clock::now();
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.stop || stopped_.load(std::memory_order_acquire)) {
      ++shard.metrics.rejected_stopped;
      return Reject::kStopped;
    }
    if (shard.queue.size() >= options_.queue_capacity) {
      ++shard.metrics.rejected_full;
      return Reject::kQueueFull;
    }
    wake = shard.queue.empty();
    shard.queue.push_back(std::move(request));
    ++shard.metrics.accepted;
    shard.metrics.queue_high_water =
        std::max<std::uint64_t>(shard.metrics.queue_high_water, shard.queue.size());
  }
  if (wake) {
    // Only the empty→non-empty transition can find the worker asleep; every
    // other push happens while it is still draining earlier work.
    shard.cv.notify_one();
  }
  return std::nullopt;
}

void Service::worker_loop(Shard& shard) {
  for (;;) {
    std::deque<Request> batch;
    {
      std::unique_lock<std::mutex> lock(shard.mutex);
      shard.cv.wait(lock, [&] { return shard.stop || !shard.queue.empty(); });
      if (shard.queue.empty()) {
        return;  // stop requested and nothing left: graceful exit
      }
      batch.swap(shard.queue);
    }
    process(shard, batch);
  }
}

void Service::process(Shard& shard, std::deque<Request>& batch) {
  // Serving counters accumulate locally and merge under the shard lock once
  // per drained batch, so submitters never contend on per-request updates.
  ShardMetrics local;
  std::vector<Request*> run;
  run.reserve(batch.size());
  for (Request& request : batch) {
    if (request.kind == Kind::kMutate) {
      // Preserve submission order around the mutation: queries queued before
      // it are answered against the pre-mutation schedule, queries after it
      // against the republished one (each flush takes a fresh snapshot).
      flush_queries(run, local);
      serve_mutation(request, local);
    } else {
      run.push_back(&request);
    }
  }
  flush_queries(run, local);
  {
    const std::lock_guard<std::mutex> lock(shard.mutex);
    shard.metrics.merge(local);
  }
}

template <typename T>
void Service::finish(Request& request, Outcome<T> outcome, Clock::time_point now,
                     ShardMetrics& local) {
  const auto waited = std::chrono::duration_cast<std::chrono::microseconds>(
      now - request.enqueued);
  local.latency_us.record(static_cast<std::uint64_t>(waited.count()));
  if (!outcome.ok()) {
    ++local.failed;
  }
  if (auto* promise = std::get_if<std::promise<T>>(&request.done)) {
    if (outcome.ok()) {
      promise->set_value(std::move(*outcome.value));
    } else {
      promise->set_exception(std::make_exception_ptr(std::runtime_error(outcome.error)));
    }
    return;
  }
  auto& callback = std::get<Callback<T>>(request.done);
  if (callback) {
    callback(std::move(outcome));
  }
}

void Service::flush_queries(std::vector<Request*>& run, ShardMetrics& local) {
  if (run.empty()) {
    return;
  }
  const auto snapshot = engine_.query_snapshot();
  ++local.batches;
  local.batch_size.record(run.size());
  // Resolve and validate each request individually, so one unknown instance
  // or out-of-range node fails that request alone instead of poisoning the
  // whole coalesced batch (the kernels throw on any invalid probe).
  const auto fail_query = [&](Request& request, std::string error) {
    const auto now = Clock::now();
    if (request.kind == Kind::kIsHappy) {
      finish(request, Outcome<bool>{.value = std::nullopt, .error = std::move(error)}, now,
             local);
      ++local.queries;
    } else {
      finish(request, Outcome<std::uint64_t>{.value = std::nullopt, .error = std::move(error)},
             now, local);
      ++local.next_gatherings;
    }
  };
  std::vector<engine::Probe> member_probes;
  std::vector<Request*> member_requests;
  std::vector<engine::Probe> next_probes;
  std::vector<Request*> next_requests;
  for (Request* request : run) {
    const auto id = snapshot->id_of(request->instance);
    if (!id) {
      fail_query(*request, "no instance named '" + request->instance + "'");
      continue;
    }
    if (request->node >= snapshot->num_nodes(*id)) {
      fail_query(*request, "node " + std::to_string(request->node) +
                               " out of range for instance '" + request->instance + "'");
      continue;
    }
    const engine::Probe probe{.instance = *id, .node = request->node,
                              .holiday = request->holiday};
    if (request->kind == Kind::kIsHappy) {
      member_probes.push_back(probe);
      member_requests.push_back(request);
    } else {
      next_probes.push_back(probe);
      next_requests.push_back(request);
    }
  }
  if (!member_probes.empty()) {
    std::vector<std::uint8_t> answers(member_probes.size());
    try {
      snapshot->query_batch(member_probes, answers);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < member_requests.size(); ++i) {
        finish(*member_requests[i], Outcome<bool>{.value = answers[i] != 0, .error = {}}, now,
               local);
      }
    } catch (const std::exception&) {
      // A batch kernel can fail as a whole (e.g. an aperiodic tenant hitting
      // its replay limit).  Fall back to serving each request singly via the
      // engine so only the offenders fail.
      const auto now = Clock::now();
      for (Request* request : member_requests) {
        try {
          const bool happy = engine_.is_happy(request->instance, request->node, request->holiday);
          finish(*request, Outcome<bool>{.value = happy, .error = {}}, now, local);
        } catch (const std::exception& single) {
          finish(*request, Outcome<bool>{.value = std::nullopt, .error = single.what()}, now,
                 local);
        }
      }
    }
    local.queries += member_requests.size();
  }
  if (!next_probes.empty()) {
    std::vector<std::uint64_t> answers(next_probes.size());
    try {
      snapshot->next_gathering_batch(next_probes, answers);
      const auto now = Clock::now();
      for (std::size_t i = 0; i < next_requests.size(); ++i) {
        finish(*next_requests[i], Outcome<std::uint64_t>{.value = answers[i], .error = {}}, now,
               local);
      }
    } catch (const std::exception&) {
      const auto now = Clock::now();
      for (Request* request : next_requests) {
        try {
          const auto next =
              engine_.next_gathering(request->instance, request->node, request->holiday);
          finish(*request,
                 Outcome<std::uint64_t>{.value = next.value_or(engine::kNoGathering), .error = {}},
                 now, local);
        } catch (const std::exception& single) {
          finish(*request, Outcome<std::uint64_t>{.value = std::nullopt, .error = single.what()},
                 now, local);
        }
      }
    }
    local.next_gatherings += next_requests.size();
  }
  run.clear();
}

void Service::serve_mutation(Request& request, ShardMetrics& local) {
  ++local.mutations;
  try {
    const engine::MutationResult result = engine_.apply_mutations(request.instance,
                                                                  request.commands);
    finish(request, Outcome<engine::MutationResult>{.value = result, .error = {}}, Clock::now(),
           local);
  } catch (const std::exception& e) {
    finish(request, Outcome<engine::MutationResult>{.value = std::nullopt, .error = e.what()},
           Clock::now(), local);
  }
}

Submission<bool> Service::is_happy(std::string instance, graph::NodeId v, std::uint64_t t) {
  std::promise<bool> promise;
  Submission<bool> submission{.future = promise.get_future(), .reject = std::nullopt};
  submission.reject = enqueue(Request{.kind = Kind::kIsHappy, .instance = std::move(instance),
                                      .node = v, .holiday = t, .commands = {}, .enqueued = {},
                                      .done = std::move(promise)});
  return submission;
}

std::optional<Reject> Service::is_happy(std::string instance, graph::NodeId v, std::uint64_t t,
                                        Callback<bool> done) {
  return enqueue(Request{.kind = Kind::kIsHappy, .instance = std::move(instance), .node = v,
                         .holiday = t, .commands = {}, .enqueued = {}, .done = std::move(done)});
}

Submission<std::uint64_t> Service::next_gathering(std::string instance, graph::NodeId v,
                                                  std::uint64_t after) {
  std::promise<std::uint64_t> promise;
  Submission<std::uint64_t> submission{.future = promise.get_future(), .reject = std::nullopt};
  submission.reject = enqueue(Request{.kind = Kind::kNextGathering,
                                      .instance = std::move(instance), .node = v,
                                      .holiday = after, .commands = {}, .enqueued = {},
                                      .done = std::move(promise)});
  return submission;
}

std::optional<Reject> Service::next_gathering(std::string instance, graph::NodeId v,
                                              std::uint64_t after, Callback<std::uint64_t> done) {
  return enqueue(Request{.kind = Kind::kNextGathering, .instance = std::move(instance), .node = v,
                         .holiday = after, .commands = {}, .enqueued = {},
                         .done = std::move(done)});
}

Submission<engine::MutationResult> Service::apply_mutations(
    std::string instance, std::vector<dynamic::MutationCommand> commands) {
  std::promise<engine::MutationResult> promise;
  Submission<engine::MutationResult> submission{.future = promise.get_future(),
                                                .reject = std::nullopt};
  submission.reject = enqueue(Request{.kind = Kind::kMutate, .instance = std::move(instance),
                                      .node = 0, .holiday = 0, .commands = std::move(commands),
                                      .enqueued = {}, .done = std::move(promise)});
  return submission;
}

std::optional<Reject> Service::apply_mutations(std::string instance,
                                               std::vector<dynamic::MutationCommand> commands,
                                               Callback<engine::MutationResult> done) {
  return enqueue(Request{.kind = Kind::kMutate, .instance = std::move(instance), .node = 0,
                         .holiday = 0, .commands = std::move(commands), .enqueued = {},
                         .done = std::move(done)});
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics out;
  out.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    out.shards.push_back(shard->metrics);
  }
  return out;
}

}  // namespace fhg::service
