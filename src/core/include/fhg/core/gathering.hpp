#pragma once

/// \file gathering.hpp
/// Family holiday gatherings as edge orientations (Definition 2.1).
///
/// A *gathering* assigns each conflict edge a direction — the couple on that
/// edge visits the endpoint the edge points to.  A parent is **happy** when
/// it is a sink (every incident edge points at it: all children home) and
/// **satisfied** when at least one incident edge points at it (Definition
/// A.1).  The set of happy nodes of any orientation is an independent set,
/// and conversely every independent set extends to an orientation making
/// exactly its members sinks — these two views are interchangeable and both
/// are provided here.

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::core {

/// An orientation of every edge of a fixed conflict graph.
class Gathering {
 public:
  /// Creates a gathering for `g` with all edges pointing at their lower
  /// endpoint.  The `Graph` must outlive the gathering.
  explicit Gathering(const graph::Graph& g);

  [[nodiscard]] const graph::Graph& graph() const noexcept { return *graph_; }

  /// True iff edge `{u,v}` points toward `v` (the couple visits `v`).
  /// Precondition: the edge exists.
  [[nodiscard]] bool points_to(graph::NodeId u, graph::NodeId v) const;

  /// Orients edge `{u,v}` toward `target` (one of the endpoints).
  /// Throws `std::invalid_argument` if `{u,v}` is not an edge or `target`
  /// is not an endpoint.
  void orient(graph::NodeId u, graph::NodeId v, graph::NodeId target);

  /// True iff every incident edge points at `v` — all children home
  /// (Definition 2.1: `v` is a sink).  Isolated nodes are vacuously happy.
  [[nodiscard]] bool happy(graph::NodeId v) const;

  /// True iff at least one incident edge points at `v` (Definition A.1).
  /// Isolated nodes are *not* satisfied (they host no children).
  [[nodiscard]] bool satisfied(graph::NodeId v) const;

  /// All happy nodes, sorted — always an independent set.
  [[nodiscard]] std::vector<graph::NodeId> happy_set() const;

  /// All satisfied nodes, sorted.
  [[nodiscard]] std::vector<graph::NodeId> satisfied_set() const;

  /// Builds an orientation in which every node of `happy_nodes` is a sink
  /// and as few others as possible are: edges incident to a happy node point
  /// at it, and the remaining edges are routed (toward happy-adjacent nodes,
  /// around cycles, or up a rooted tree) so that a node outside the set is a
  /// sink only when unavoidable.  Unavoidable cases are exactly (a) isolated
  /// nodes, which are sinks of any orientation, and (b) one node per *tree*
  /// component containing no requested sink — a tree with `n` nodes has only
  /// `n-1` edges, so some node always ends up with no outgoing edge.
  /// Throws `std::invalid_argument` if `happy_nodes` is not an independent
  /// set.
  [[nodiscard]] static Gathering from_happy_set(const graph::Graph& g,
                                                std::span<const graph::NodeId> happy_nodes);

 private:
  /// Index of edge `{u,v}` in the canonical (sorted pair) edge order.
  [[nodiscard]] std::size_t edge_index(graph::NodeId u, graph::NodeId v) const;

  const graph::Graph* graph_;
  /// For edge k joining u < v: true means "points to v", false "points to u".
  std::vector<bool> toward_upper_;
  /// CSR-aligned edge ids: edge_ids_[i] is the edge index of adjacency slot i.
  std::vector<std::size_t> slot_edge_;
  std::vector<std::size_t> offsets_;
};

}  // namespace fhg::core
