#pragma once

/// \file fcfg.hpp
/// The "first come first grab" chaotic baseline (§1).
///
/// Each holiday, parents wake up in a uniformly random order and grab their
/// not-yet-grabbed children; a parent hosts everyone iff it woke before all
/// of its in-law rivals — i.e. it is a local minimum of the wake-up
/// permutation.  The happy probability of node `p` is exactly
/// `1/(deg(p)+1)` per holiday, so the *expected* gap is `deg(p)+1` — the
/// fairness landmark the paper's deterministic algorithms chase — but there
/// is no worst-case guarantee: gaps grow like `(d+1)·ln(horizon)` over long
/// runs (measured in E7).

#include "fhg/core/scheduler.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::core {

class FirstComeFirstGrabScheduler final : public SchedulerBase {
 public:
  /// Randomness is a pure function of `(seed, holiday)`, so runs replay
  /// identically after `reset()`.
  FirstComeFirstGrabScheduler(const graph::Graph& g, std::uint64_t seed) noexcept
      : SchedulerBase(g), seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "first-come-first-grab"; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override { rewind(); }
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return false; }
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId) const override {
    return std::nullopt;
  }
  /// No worst-case guarantee — that is the point of this baseline.
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId) const override {
    return std::nullopt;
  }
  /// Randomness is a pure function of `(seed, holiday)`: skipping is O(1).
  void advance_to(std::uint64_t t) override { skip_to(t); }

  /// The happy set of an arbitrary holiday (stateless; used by the parallel
  /// Monte-Carlo driver in E7).
  [[nodiscard]] std::vector<graph::NodeId> happy_set_at(std::uint64_t t) const;

 private:
  std::uint64_t seed_;
};

}  // namespace fhg::core
