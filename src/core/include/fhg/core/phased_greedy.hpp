#pragma once

/// \file phased_greedy.hpp
/// Sequential engine for the §3 Phased Greedy Coloring algorithm.
///
/// At holiday `i`, nodes whose color equals `i` are happy and immediately
/// recolor to the smallest value `> i` unused by any neighbor.  Theorem 3.1:
/// the gap between consecutive happy holidays of `p` is at most
/// `deg(p) + 1` (and the wait for the *first* one is at most the initial
/// color, itself ≤ `deg(p) + 1` for a greedy/Johansson coloring).
///
/// The schedule is generally aperiodic — the same node's gaps vary from
/// cycle to cycle — which is exactly the deficiency motivating §4 and §5.
/// This sequential engine produces holidays in O(|happy| · Δ) per step via a
/// color→nodes bucket map; it is schedule-identical to
/// `fhg::distributed::run_phased_greedy` (tested in integration tests).

#include <algorithm>
#include <unordered_map>

#include "fhg/coloring/coloring.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

class PhasedGreedyScheduler final : public SchedulerBase {
 public:
  /// `initial` must be a proper, complete coloring (throws otherwise).
  /// For the Theorem 3.1 first-wait bound it should also be degree-bounded
  /// (`col ≤ deg+1`), e.g. any greedy or Johansson coloring.
  PhasedGreedyScheduler(const graph::Graph& g, coloring::Coloring initial);

  [[nodiscard]] std::string name() const override { return "phased-greedy"; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override;
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return false; }
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId) const override {
    return std::nullopt;
  }
  /// Theorem 3.1: consecutive gaps never exceed `deg(v) + 1`.  The wait for
  /// the *first* happy holiday equals the initial color, so for arbitrary
  /// (non-degree-bounded) initial colorings the unconditional bound is the
  /// max of the two; they coincide for greedy/Johansson initial colorings.
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override {
    return std::max<std::uint64_t>(graph().degree(v) + std::uint64_t{1}, initial_.color(v));
  }

  /// The node's color going into the next holiday.
  [[nodiscard]] coloring::Color color_of(graph::NodeId v) const noexcept { return colors_[v]; }

 private:
  coloring::Coloring initial_;
  std::vector<coloring::Color> colors_;
  /// color -> nodes currently holding it (future colors only).
  std::unordered_map<coloring::Color, std::vector<graph::NodeId>> buckets_;

  void rebuild_buckets();
};

}  // namespace fhg::core
