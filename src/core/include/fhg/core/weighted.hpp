#pragma once

/// \file weighted.hpp
/// Extension: weighted perfectly-periodic scheduling — §5 generalized from
/// degree-derived periods to *user-chosen* demand rates.
///
/// The paper's related-work section points at proportional-share scheduling
/// (Baruah et al.'s proportionate progress; Bar-Noy/Nisgav/Patt-Shamir's
/// perfectly periodic schedules), where each client has a weight and wants
/// the resource at a frequency proportional to it.  The §5 residue machinery
/// supports this directly: give node `v` a period `P_v = 2^{j_v}` (its
/// demand, rounded up to a power of two) and pick residues in
/// *decreasing-period-first* order.  When `v` picks, an already-assigned
/// neighbor `w` (whose period is ≥ `P_v`) blocks exactly one residue of
/// `v`'s modulus, so the pick succeeds whenever the **schedule load**
///
///     load(v) = 1/P_v + Σ_{w ∈ N(v)} max(1/P_v, 1/P_w)  ≤  1
///
/// — the graph generalization of both the §5 pigeonhole (`(d+1)/P_v ≤ 1`
/// when every neighbor is slower) and the Theorem 4.1 budget
/// `Σ 1/f(c) ≤ 1` (the clique case).  `kStrict` rejects over-loaded
/// requests; `kAutoRelax` first runs a relaxation pass that doubles the
/// fastest period in any over-loaded closed neighborhood until every load
/// is ≤ 1 (strictly decreasing loads → terminates), after which assignment
/// provably cannot fail.
///
/// The §5 degree-bound scheduler is exactly this scheme with
/// `P_v = 2^⌈log(deg(v)+1)⌉` (load = (d+1)/P_v ≤ 1 automatically).

#include <cstdint>
#include <span>
#include <vector>

#include "fhg/coding/prefix.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

/// How to handle a node whose requested period is infeasible.
enum class WeightedPolicy : std::uint8_t {
  kStrict,     ///< throw std::runtime_error naming the node
  kAutoRelax,  ///< double the node's period until a residue frees up
};

/// Result of the weighted residue assignment.
struct WeightedAssignment {
  /// One periodic slot per node; `slots[v].period()` is the granted period
  /// (≥ the rounded request; > only if auto-relaxed).
  std::vector<coding::ScheduleSlot> slots;
  /// Nodes whose period was relaxed beyond the rounded request.
  std::vector<graph::NodeId> relaxed;
};

/// Rounds `requested` up to the next power of two (min 1). 0 is rejected.
[[nodiscard]] std::uint64_t round_period_up(std::uint64_t requested);

/// Per-node schedule load `1/P_v + Σ_{w∈N(v)} max(1/P_v, 1/P_w)` under the
/// *rounded* requests — the feasibility diagnostic: load ≤ 1 everywhere
/// guarantees every request is granted without relaxation.
[[nodiscard]] std::vector<double> schedule_load(
    const graph::Graph& g, std::span<const std::uint64_t> requested_periods);

/// Assigns residues for the requested periods (each rounded up to a power
/// of two).  Nodes pick in decreasing-period order (ties by id).  Under
/// `kStrict`, throws `std::runtime_error` if some node finds every residue
/// blocked (possible iff some load exceeds 1); under `kAutoRelax` a
/// relaxation pre-pass doubles periods until every load is ≤ 1, after
/// which the assignment always succeeds.
[[nodiscard]] WeightedAssignment assign_weighted_slots(
    const graph::Graph& g, std::span<const std::uint64_t> requested_periods,
    WeightedPolicy policy = WeightedPolicy::kAutoRelax);

/// Perfectly periodic scheduler over a weighted assignment.
///
/// ```
/// std::vector<std::uint64_t> demand = ...;   // requested periods
/// WeightedPeriodicScheduler s(g, demand);    // grants power-of-two periods
/// ```
class WeightedPeriodicScheduler final : public SchedulerBase {
 public:
  WeightedPeriodicScheduler(const graph::Graph& g,
                            std::span<const std::uint64_t> requested_periods,
                            WeightedPolicy policy = WeightedPolicy::kAutoRelax);

  [[nodiscard]] std::string name() const override { return "weighted-periodic"; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override { rewind(); }
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override {
    return assignment_.slots[v].period();
  }
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override {
    return assignment_.slots[v].period();
  }
  /// First happy holiday of `v`'s granted slot.
  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override {
    return assignment_.slots[v].first_holiday();
  }
  /// Stateless beyond the holiday counter: skipping is O(1).
  void advance_to(std::uint64_t t) override { skip_to(t); }

  [[nodiscard]] bool happy_at(graph::NodeId v, std::uint64_t t) const noexcept {
    return assignment_.slots[v].matches(t);
  }
  [[nodiscard]] const WeightedAssignment& assignment() const noexcept { return assignment_; }

 private:
  WeightedAssignment assignment_;
};

}  // namespace fhg::core
