#pragma once

/// \file round_robin.hpp
/// The §1 baseline: cycle through the color classes of a fixed coloring.
///
/// "On year i, parents whose color is equal to (i mod c) + 1 are happy."
/// Perfectly periodic with period = the number of colors for *every* node —
/// a global bound: the parents of a single child wait as long as the parents
/// of a large brood.  This is the scheduler the paper's local-bound
/// algorithms are measured against (E2, E11).

#include "fhg/coloring/coloring.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

class RoundRobinColorScheduler final : public SchedulerBase {
 public:
  /// Schedules color class `((t-1) mod C) + 1` at holiday `t`, where `C` is
  /// the largest color in `coloring` (which must be proper and complete).
  RoundRobinColorScheduler(const graph::Graph& g, coloring::Coloring coloring);

  [[nodiscard]] std::string name() const override { return "round-robin"; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override { rewind(); }
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override;
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;
  /// First happy holiday = the node's color.
  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override;
  /// Stateless: the happy set is a pure function of `t`, so skipping is O(1).
  void advance_to(std::uint64_t t) override { skip_to(t); }

  /// Membership test for an arbitrary holiday (stateless fast path).
  [[nodiscard]] bool happy_at(graph::NodeId v, std::uint64_t t) const noexcept;

  [[nodiscard]] const coloring::Coloring& coloring() const noexcept { return coloring_; }

 private:
  coloring::Coloring coloring_;
  coloring::Color num_colors_;
  /// Nodes of each color, sorted; index c-1 holds color c.
  std::vector<std::vector<graph::NodeId>> classes_;
};

}  // namespace fhg::core
