#pragma once

/// \file auditor.hpp
/// Runtime verification of schedule invariants.
///
/// Two invariants from the paper are checked on every holiday:
///  1. **Independence** — the happy set is an independent set of the
///     conflict graph (Definition 2.1: happy parents are sinks, and two
///     adjacent sinks are impossible).
///  2. **One color per holiday** (optional, for color-based schedulers) —
///     the hypothesis of Theorem 4.1 and a property of the §4 construction:
///     all happy nodes wear the same color.
///
/// The auditor is deliberately independent of the schedulers: experiments
/// never trust an algorithm to audit itself.

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "fhg/coloring/coloring.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::core {

class ScheduleAuditor {
 public:
  /// Audits against `g`; if `coloring` is non-null, additionally enforces
  /// the one-color-per-holiday invariant.
  explicit ScheduleAuditor(const graph::Graph& g, const coloring::Coloring* coloring = nullptr)
      : graph_(&g), coloring_(coloring) {}

  /// Checks holiday `t`'s happy set; records and returns false on the first
  /// violated invariant.
  bool check(std::uint64_t t, std::span<const graph::NodeId> happy);

  [[nodiscard]] bool all_ok() const noexcept { return violations_ == 0; }
  [[nodiscard]] std::uint64_t violations() const noexcept { return violations_; }

  /// Human-readable description of the first violation, empty if none.
  [[nodiscard]] const std::string& first_violation() const noexcept { return first_violation_; }

 private:
  const graph::Graph* graph_;
  const coloring::Coloring* coloring_;
  std::uint64_t violations_ = 0;
  std::string first_violation_;
};

}  // namespace fhg::core
