#pragma once

/// \file gap_tracker.hpp
/// Per-node unhappiness bookkeeping over a schedule run.
///
/// Terminology (Definition 2.2): between two consecutive happy holidays
/// `t1 < t2` the node endures an unhappiness interval of length
/// `t2 - t1 - 1`; `mul(p)` is the longest such interval.  We track the
/// **gap** `t2 - t1` instead (with a virtual appearance at holiday 0, so the
/// wait for the first happy holiday counts as a gap too); `mul = max_gap-1`.
/// The paper's guarantees translate to: Theorem 3.1 ⇒ `max_gap ≤ d+1`;
/// Theorems 4.2/5.3 ⇒ every gap equals the period.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::core {

class GapTracker {
 public:
  explicit GapTracker(graph::NodeId n)
      : last_seen_(n, 0), max_gap_(n, 0), appearances_(n, 0), uniform_gap_(n, 0) {}

  /// Records the happy set of holiday `t`; `t` must increase across calls.
  void observe(std::uint64_t t, std::span<const graph::NodeId> happy);

  /// Largest closed gap of `v` (0 if `v` appeared at most zero times…
  /// see `max_gap_with_tail` for the open-ended variant).
  [[nodiscard]] std::uint64_t max_gap(graph::NodeId v) const noexcept { return max_gap_[v]; }

  /// Largest gap counting the still-open tail `horizon − last_seen + 1` as
  /// if the node appeared at `horizon + 1`.  A node that never appeared gets
  /// `horizon + 1`.  Use when a bound must hold unconditionally.
  [[nodiscard]] std::uint64_t max_gap_with_tail(graph::NodeId v,
                                                std::uint64_t horizon) const noexcept;

  /// `mul(v)` = longest unhappiness interval = `max_gap(v) − 1` (0 if no
  /// closed gap).
  [[nodiscard]] std::uint64_t mul(graph::NodeId v) const noexcept {
    return max_gap_[v] == 0 ? 0 : max_gap_[v] - 1;
  }

  [[nodiscard]] std::uint64_t appearances(graph::NodeId v) const noexcept {
    return appearances_[v];
  }

  [[nodiscard]] std::uint64_t last_seen(graph::NodeId v) const noexcept { return last_seen_[v]; }

  /// Exact period detection: the common difference of all consecutive
  /// appearances of `v` (including the virtual appearance at 0 only if
  /// `first == period`), or nullopt if gaps differ or `v` appeared < 2
  /// times.  For a perfectly periodic scheduler this returns exactly
  /// `period_of(v)` once the horizon covers two periods.
  [[nodiscard]] std::optional<std::uint64_t> detected_period(graph::NodeId v) const noexcept;

  [[nodiscard]] graph::NodeId num_nodes() const noexcept {
    return static_cast<graph::NodeId>(last_seen_.size());
  }

 private:
  std::vector<std::uint64_t> last_seen_;
  std::vector<std::uint64_t> max_gap_;
  std::vector<std::uint64_t> appearances_;
  /// Common gap between *real* appearances while consistent;
  /// 0 = unknown; UINT64_MAX = inconsistent.
  std::vector<std::uint64_t> uniform_gap_;
};

}  // namespace fhg::core
