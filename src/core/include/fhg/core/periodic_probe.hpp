#pragma once

/// \file periodic_probe.hpp
/// An exhaustive probe of the paper's final open problem (§6): *"prove that
/// if one requires a periodic schedule then the best guarantee obtainable is
/// d + ω(1)"* — versus the `d+1` bound that non-periodic phased greedy
/// achieves and the `2^⌈log(d+1)⌉ ≤ 2d` that §5's power-of-two periods give.
///
/// With **general** (not power-of-two) periods, node `v` hosting at
/// `t ≡ r_v (mod P_v)` collides with neighbor `w` iff
/// `r_v ≡ r_w (mod gcd(P_v, P_w))` — two arithmetic progressions intersect
/// exactly when their residues agree modulo the gcd of their moduli (CRT).
/// Feasibility of a period assignment is therefore a finite constraint
/// problem over residues, decidable by backtracking on small graphs.
///
/// `min_uniform_slack` asks: what is the least `k` such that some choice of
/// periods `P_v ≤ deg(v) + k` (searched jointly with the residues) is
/// conflict-free?  `k = 1` means the non-periodic `d+1` guarantee is matched
/// *perfectly periodically* on that instance — so any graph family where the
/// minimum slack grows unboundedly would prove the conjecture.  Note the
/// inequality matters: a path cannot use periods exactly (2, 3, 3, …, 2) —
/// coprime periods always collide — but all-2s is a perfect witness.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::core {

/// A general-period slot: host at `t ≡ residue (mod period)`.
struct GeneralSlot {
  std::uint64_t residue = 0;
  std::uint64_t period = 1;

  [[nodiscard]] constexpr bool matches(std::uint64_t t) const noexcept {
    return t % period == residue;
  }
  friend constexpr bool operator==(const GeneralSlot&, const GeneralSlot&) noexcept = default;
};

/// True iff adjacent slots never share a holiday (the pairwise gcd test).
[[nodiscard]] bool general_slots_conflict_free(const graph::Graph& g,
                                               std::span<const GeneralSlot> slots);

/// Searches for residues making `periods` conflict-free, by backtracking in
/// decreasing-degree order.  Returns the slots, or nullopt if none exist (or
/// the search exceeded `node_budget` backtracking steps; 0 = unlimited).
/// Intended for small instances — the search is exponential in the worst
/// case.
[[nodiscard]] std::optional<std::vector<GeneralSlot>> find_periodic_residues(
    const graph::Graph& g, std::span<const std::uint64_t> periods,
    std::uint64_t node_budget = 0);

/// Searches for slots with `slots[v].period ≤ max_periods[v]`, periods and
/// residues chosen jointly by backtracking (longer periods tried first: they
/// constrain neighbors less).  Returns nullopt if infeasible or the budget
/// is exhausted.
[[nodiscard]] std::optional<std::vector<GeneralSlot>> find_periodic_slots_bounded(
    const graph::Graph& g, std::span<const std::uint64_t> max_periods,
    std::uint64_t node_budget = 0);

/// The least `k ∈ [1, max_slack]` such that some periods `P_v ≤ deg(v) + k`
/// are feasible (isolated nodes get `P_v = 1`), or nullopt if none is within
/// range/budget.  Returns the witness slots for the minimal `k`.
struct SlackProbe {
  std::uint32_t slack = 0;
  std::vector<GeneralSlot> slots;
};
[[nodiscard]] std::optional<SlackProbe> min_uniform_slack(const graph::Graph& g,
                                                          std::uint32_t max_slack = 8,
                                                          std::uint64_t node_budget = 2'000'000);

}  // namespace fhg::core
