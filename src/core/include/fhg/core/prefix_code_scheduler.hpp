#pragma once

/// \file prefix_code_scheduler.hpp
/// The §4 perfectly-periodic, lightweight, color-bound scheduler.
///
/// Given *any* proper coloring and a prefix-free code `K`, node `p` with
/// color `c` is happy at holiday `t` iff the `|K(c)|` least-significant bits
/// of `t` spell `K(c)` reversed (the paper's `LSB(B(i)) = ω(p)^R` test) —
/// equivalently `t ≡ slot(c).residue (mod 2^|K(c)|)`.  Prefix-freeness means
/// no holiday ever matches two distinct colors, so each happy set is a
/// subset of one color class: an independent set.
///
/// With the Elias omega code the period is `2^ρ(c) ≤ 2^{1+log* c}·φ(c)`
/// (Theorem 4.2), nearly matching the `Ω(φ(c))` lower bound of Theorem 4.1.
/// The scheduler is *lightweight*: after the initial coloring a node needs
/// only its own color — no further communication, no global state.

#include "fhg/coding/elias.hpp"
#include "fhg/coding/prefix.hpp"
#include "fhg/coloring/coloring.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

class PrefixCodeScheduler final : public SchedulerBase {
 public:
  /// `coloring` must be proper and complete; `family` selects the prefix-free
  /// code (omega for the paper's headline bound).
  PrefixCodeScheduler(const graph::Graph& g, coloring::Coloring coloring,
                      coding::CodeFamily family = coding::CodeFamily::kEliasOmega);

  [[nodiscard]] std::string name() const override {
    return "prefix-" + coding::code_family_name(family_);
  }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override { rewind(); }
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }
  /// Exactly `2^{|K(c_v)|}`.
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override;
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;
  /// First happy holiday of `v`'s slot.
  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override {
    return slots_[v].first_holiday();
  }
  /// Stateless beyond the holiday counter: skipping is O(1).
  void advance_to(std::uint64_t t) override { skip_to(t); }

  /// Stateless membership test for an arbitrary holiday.
  [[nodiscard]] bool happy_at(graph::NodeId v, std::uint64_t t) const noexcept {
    return slots_[v].matches(t);
  }

  /// The unique color holiday `t` makes happy (whether or not a node wears
  /// it) — the paper's `decode(i)` map.
  [[nodiscard]] std::optional<std::uint64_t> decode_holiday(std::uint64_t t) const {
    return coding::decode_holiday(family_, t);
  }

  [[nodiscard]] const coloring::Coloring& coloring() const noexcept { return coloring_; }
  [[nodiscard]] coding::CodeFamily family() const noexcept { return family_; }
  [[nodiscard]] coding::ScheduleSlot slot_of(graph::NodeId v) const noexcept { return slots_[v]; }

 private:
  coloring::Coloring coloring_;
  coding::CodeFamily family_;
  std::vector<coding::ScheduleSlot> slots_;
};

}  // namespace fhg::core
