#pragma once

/// \file scheduler.hpp
/// The holiday-scheduling interface: an infinite sequence of independent
/// sets of a fixed conflict graph, consumed one holiday at a time.
///
/// Holidays are 1-based, as in the paper.  Stateful algorithms (Phased
/// Greedy recolors after every holiday; First-Come-First-Grab draws fresh
/// randomness) advance internal state in `next_holiday()`, so holidays are
/// visited strictly in order; `reset()` rewinds to the beginning.  Perfectly
/// periodic schedulers additionally expose each node's exact period and can
/// answer membership for arbitrary holidays.

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::core {

/// One node's `(period, phase)` pair as exposed by `period_phase_rows` —
/// everything a serving layer needs to answer membership for that node.
struct PeriodPhaseRow {
  std::uint64_t period = 0;
  std::uint64_t phase = 0;

  friend constexpr bool operator==(const PeriodPhaseRow&, const PeriodPhaseRow&) noexcept =
      default;
};

/// Abstract producer of the gathering sequence `H = h_1, h_2, …`.
class Scheduler {
 public:
  virtual ~Scheduler();

  /// Algorithm name for reports, e.g. "phased-greedy".
  [[nodiscard]] virtual std::string name() const = 0;

  /// The conflict graph being scheduled.
  [[nodiscard]] virtual const graph::Graph& graph() const noexcept = 0;

  /// Advances to the next holiday and returns its happy set, sorted
  /// ascending.  The first call yields holiday 1.  Every returned set is an
  /// independent set of `graph()` (audited by `ScheduleAuditor`).
  [[nodiscard]] virtual std::vector<graph::NodeId> next_holiday() = 0;

  /// Index of the most recently returned holiday (0 before the first call).
  [[nodiscard]] virtual std::uint64_t current_holiday() const noexcept = 0;

  /// Rewinds to before holiday 1, restoring the initial state.
  virtual void reset() = 0;

  /// True iff every node reappears with a fixed, known period.
  [[nodiscard]] virtual bool perfectly_periodic() const noexcept = 0;

  /// The exact period of `v` when `perfectly_periodic()`, else nullopt.
  [[nodiscard]] virtual std::optional<std::uint64_t> period_of(graph::NodeId v) const = 0;

  /// A proven upper bound on the gap between consecutive happy holidays of
  /// `v` (equals the period for perfectly periodic schedules); nullopt when
  /// the algorithm offers no worst-case guarantee (e.g. the random baseline).
  [[nodiscard]] virtual std::optional<std::uint64_t> gap_bound(graph::NodeId v) const = 0;

  /// The *phase* of `v`: its first happy holiday, when the schedule is
  /// perfectly periodic (then `v` is happy exactly at `phase, phase + period,
  /// phase + 2·period, …`).  Nullopt for aperiodic schedulers.  Together with
  /// `period_of` this is everything a serving layer needs to answer
  /// membership for arbitrary holidays without running the schedule
  /// (`fhg::engine::PeriodTable` materializes exactly this pair).
  [[nodiscard]] virtual std::optional<std::uint64_t> phase_of(graph::NodeId v) const;

  /// Batch-friendly accessor: the `(period, phase)` pair of every node in one
  /// call, or an empty vector when the schedule is not perfectly periodic (or
  /// does not expose phases).  The default implementation loops over
  /// `period_of`/`phase_of`; schedulers that hold the pairs contiguously may
  /// override it to a bulk copy.  Consumers building whole-table structures
  /// (`fhg::engine::PeriodTable`) should prefer this over 2n virtual calls.
  [[nodiscard]] virtual std::vector<PeriodPhaseRow> period_phase_rows() const;

  /// Advances internal state so that `current_holiday() == t`, without
  /// returning the intervening happy sets.  No-op when `t` is not ahead of
  /// the current holiday (schedules never rewind; use `reset()`).  The
  /// default implementation replays holiday by holiday; stateless schedulers
  /// (whose happy sets are pure functions of `t`) override it with an O(1)
  /// counter skip.  Snapshot restore is built on this.
  virtual void advance_to(std::uint64_t t);
};

/// Shared bookkeeping for schedulers over a fixed graph.
class SchedulerBase : public Scheduler {
 public:
  explicit SchedulerBase(const graph::Graph& g) noexcept : graph_(&g) {}

  [[nodiscard]] const graph::Graph& graph() const noexcept final { return *graph_; }

  [[nodiscard]] std::uint64_t current_holiday() const noexcept final { return holiday_; }

 protected:
  /// Bumps and returns the next 1-based holiday index.
  std::uint64_t advance() noexcept { return ++holiday_; }

  void rewind() noexcept { holiday_ = 0; }

  /// Forwards the holiday counter (never backwards).  For schedulers whose
  /// state *is* the counter this implements `advance_to` in O(1).
  void skip_to(std::uint64_t t) noexcept { holiday_ = std::max(holiday_, t); }

 private:
  const graph::Graph* graph_;
  std::uint64_t holiday_ = 0;
};

}  // namespace fhg::core
