#pragma once

/// \file degree_bound.hpp
/// The §5 perfectly-periodic degree-bound scheduler.
///
/// Every node `p` of degree `d` owns a residue `x ∈ [0, 2^j)`,
/// `j = ⌈log(d+1)⌉`, and hosts exactly the holidays `t ≡ x (mod 2^j)` —
/// period `2^⌈log(d+1)⌉ ≤ 2d` (`= 1` for isolated nodes), within a factor
/// ~2 of the non-periodic `d+1` guarantee of §3 (the separation the paper
/// conjectures is inherent; measured in E14).
///
/// The sequential assignment (§5.1) walks nodes in decreasing-degree order;
/// when `p` picks, at most `d` residues are blocked modulo `2^j` by
/// already-assigned neighbors, and `2^j ≥ d+1` leaves a free one
/// (Lemma 5.1 proves adjacent nodes never collide).  The distributed
/// variant lives in `fhg::distributed::distributed_degree_bound`; its slots
/// plug into this scheduler via the slots constructor.

#include "fhg/coding/prefix.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

/// Residue selection policy for `assign_degree_bound_slots`.
enum class ResiduePick : std::uint8_t {
  kSmallestFree,  ///< deterministic, the sequential §5.1 description
  kRandomFree,    ///< uniform over free residues (models distributed picks)
};

/// Computes the §5.1 sequential residue assignment.
/// `order` must be a permutation of the nodes sorted by non-increasing
/// degree; pass the result of `degree_bound_order(g)` or supply a custom one
/// (the ablation E5 passes an *increasing* order to exhibit the documented
/// §6 failure).  A node blocks every residue colliding with an assigned
/// neighbor modulo the smaller of the two periods; for valid orders each
/// neighbor blocks exactly one residue and the pigeonhole always leaves one
/// free.  Throws `std::runtime_error` if some node finds no free residue —
/// impossible for non-increasing-degree orders, reachable for bad ones.
[[nodiscard]] std::vector<coding::ScheduleSlot> assign_degree_bound_slots(
    const graph::Graph& g, std::span<const graph::NodeId> order,
    ResiduePick pick = ResiduePick::kSmallestFree, std::uint64_t seed = 0);

/// Non-increasing-degree node order (ties by id for determinism).
[[nodiscard]] std::vector<graph::NodeId> degree_bound_order(const graph::Graph& g);

/// Verifies Lemma 5.1/5.2 combinatorially: no edge has both endpoint slots
/// matching a common holiday.  Two slots with lengths `j1 ≤ j2` collide iff
/// `residue1 ≡ residue2 (mod 2^{j1})`.  Returns true when conflict-free.
[[nodiscard]] bool slots_conflict_free(const graph::Graph& g,
                                       std::span<const coding::ScheduleSlot> slots);

class DegreeBoundScheduler final : public SchedulerBase {
 public:
  /// Runs the §5.1 sequential assignment in decreasing-degree order.
  explicit DegreeBoundScheduler(const graph::Graph& g);

  /// Adopts externally computed slots (e.g. from
  /// `fhg::distributed::distributed_degree_bound`).  Throws
  /// `std::invalid_argument` if the slots conflict on some edge.
  DegreeBoundScheduler(const graph::Graph& g, std::vector<coding::ScheduleSlot> slots);

  [[nodiscard]] std::string name() const override { return "degree-bound"; }
  [[nodiscard]] std::vector<graph::NodeId> next_holiday() override;
  void reset() override { rewind(); }
  [[nodiscard]] bool perfectly_periodic() const noexcept override { return true; }
  /// Exactly `2^⌈log(deg(v)+1)⌉`.
  [[nodiscard]] std::optional<std::uint64_t> period_of(graph::NodeId v) const override;
  [[nodiscard]] std::optional<std::uint64_t> gap_bound(graph::NodeId v) const override;
  /// First happy holiday of `v`'s residue slot.
  [[nodiscard]] std::optional<std::uint64_t> phase_of(graph::NodeId v) const override {
    return slots_[v].first_holiday();
  }
  /// Stateless beyond the holiday counter: skipping is O(1).
  void advance_to(std::uint64_t t) override { skip_to(t); }

  [[nodiscard]] bool happy_at(graph::NodeId v, std::uint64_t t) const noexcept {
    return slots_[v].matches(t);
  }
  [[nodiscard]] coding::ScheduleSlot slot_of(graph::NodeId v) const noexcept { return slots_[v]; }

 private:
  std::vector<coding::ScheduleSlot> slots_;
};

}  // namespace fhg::core
