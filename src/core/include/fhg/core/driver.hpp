#pragma once

/// \file driver.hpp
/// Runs a scheduler for a fixed horizon, auditing invariants and collecting
/// the per-node statistics every experiment table is built from.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fhg/core/auditor.hpp"
#include "fhg/core/gap_tracker.hpp"
#include "fhg/core/scheduler.hpp"

namespace fhg::core {

/// Everything measured over one schedule run.
struct RunReport {
  std::string scheduler_name;
  std::uint64_t horizon = 0;

  /// Per-node results (index = node id).
  std::vector<std::uint64_t> max_gap;            ///< incl. the wait for the first appearance
  std::vector<std::uint64_t> max_gap_with_tail;  ///< incl. the open tail at the horizon
  std::vector<std::uint64_t> appearances;
  std::vector<std::optional<std::uint64_t>> detected_period;

  bool independence_ok = false;
  bool one_color_ok = true;  ///< meaningful only when a coloring was supplied
  std::string first_violation;

  std::uint64_t total_happy = 0;    ///< Σ |happy set|, the schedule's throughput
  std::uint64_t max_happy_set = 0;  ///< largest single holiday

  /// True iff every node with a `gap_bound` respected it (tail included).
  bool bounds_respected = true;
  /// Nodes whose observed gap exceeded the scheduler's claimed bound.
  std::vector<graph::NodeId> bound_violators;
};

/// Options for `run_schedule`.
struct RunOptions {
  std::uint64_t horizon = 1000;
  /// When non-null, additionally audits one-color-per-holiday.
  const coloring::Coloring* coloring = nullptr;
  /// Check each node's observed gaps against `scheduler.gap_bound`.
  bool check_bounds = true;
};

/// Resets `scheduler` and drives it for `options.horizon` holidays.
[[nodiscard]] RunReport run_schedule(Scheduler& scheduler, const RunOptions& options);

}  // namespace fhg::core
