#include "fhg/core/weighted.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/core/degree_bound.hpp"

namespace fhg::core {

std::uint64_t round_period_up(std::uint64_t requested) {
  if (requested == 0) {
    throw std::invalid_argument("round_period_up: period 0 is meaningless");
  }
  return std::bit_ceil(requested);
}

namespace {

/// load(v) over period *lengths* (periods are 2^length).
double load_of(const graph::Graph& g, std::span<const std::uint32_t> length, graph::NodeId v) {
  double total = std::exp2(-static_cast<double>(length[v]));
  for (const graph::NodeId w : g.neighbors(v)) {
    total += std::exp2(-static_cast<double>(std::min(length[v], length[w])));
  }
  return total;
}

}  // namespace

std::vector<double> schedule_load(const graph::Graph& g,
                                  std::span<const std::uint64_t> requested_periods) {
  if (requested_periods.size() != g.num_nodes()) {
    throw std::invalid_argument("schedule_load: one period per node required");
  }
  std::vector<std::uint32_t> length(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    length[v] = coding::ceil_log2(round_period_up(requested_periods[v]));
  }
  std::vector<double> load(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    load[v] = load_of(g, length, v);
  }
  return load;
}

WeightedAssignment assign_weighted_slots(const graph::Graph& g,
                                         std::span<const std::uint64_t> requested_periods,
                                         WeightedPolicy policy) {
  const graph::NodeId n = g.num_nodes();
  if (requested_periods.size() != n) {
    throw std::invalid_argument("assign_weighted_slots: one period per node required");
  }
  // Input cap keeps the residue bitmaps small (2^24 slots = 2 MB transient);
  // holiday periods beyond 16M are outside any plausible use of this model.
  constexpr std::uint32_t kMaxRequestedLength = 24;
  constexpr std::uint32_t kMaxRelaxedLength = 28;
  std::vector<std::uint32_t> length(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    length[v] = coding::ceil_log2(round_period_up(requested_periods[v]));
    if (length[v] > kMaxRequestedLength) {
      throw std::invalid_argument("assign_weighted_slots: period exceeds 2^24 at node " +
                                  std::to_string(v));
    }
  }

  const std::vector<std::uint32_t> requested_length = length;

  // Attempt an assignment in decreasing-period order (§5: slow nodes commit
  // first so each later node loses exactly one residue per earlier
  // neighbor).  On the first failure, returns the failing node instead.
  WeightedAssignment result;
  std::vector<bool> assigned(n, false);
  const auto try_assign = [&]() -> graph::NodeId {
    std::vector<graph::NodeId> order(n);
    std::iota(order.begin(), order.end(), 0U);
    std::stable_sort(order.begin(), order.end(), [&length](graph::NodeId a, graph::NodeId b) {
      return length[a] > length[b];
    });
    result.slots.assign(n, coding::ScheduleSlot{});
    assigned.assign(n, false);
    for (const graph::NodeId v : order) {
      const std::uint64_t modulus = std::uint64_t{1} << length[v];
      std::vector<bool> blocked(modulus, false);
      std::uint64_t blocked_count = 0;
      for (const graph::NodeId w : g.neighbors(v)) {
        if (!assigned[w]) {
          continue;
        }
        // w committed earlier, so its period is >= v's and this blocks
        // exactly one residue of v's modulus.
        const std::uint32_t jm = std::min(length[v], result.slots[w].length);
        const std::uint64_t step = std::uint64_t{1} << jm;
        for (std::uint64_t x = result.slots[w].residue & (step - 1); x < modulus; x += step) {
          if (!blocked[x]) {
            blocked[x] = true;
            ++blocked_count;
          }
        }
      }
      if (blocked_count == modulus) {
        return v;  // every residue taken: over-demanded neighborhood
      }
      for (std::uint64_t x = 0; x < modulus; ++x) {
        if (!blocked[x]) {
          result.slots[v] = coding::ScheduleSlot{x, length[v]};
          break;
        }
      }
      assigned[v] = true;
    }
    return n;  // success
  };

  for (;;) {
    const graph::NodeId failed = try_assign();
    if (failed == n) {
      break;
    }
    if (policy == WeightedPolicy::kStrict) {
      throw std::runtime_error(
          "assign_weighted_slots: node " + std::to_string(failed) + " requested period " +
          std::to_string(std::uint64_t{1} << length[failed]) +
          " but its neighborhood consumed every residue (schedule load > 1); "
          "lower the demands or use WeightedPolicy::kAutoRelax");
    }
    // Local repair: the blockage is caused by committed (faster-or-equal
    // frequency) neighbors.  If some committed neighbor is strictly faster
    // than the failing node, slowing it down frees half its blocked
    // residues; otherwise slow the failing node itself.  Every repair
    // increments some length, so the loop ends within 28·n steps.
    graph::NodeId victim = failed;
    for (const graph::NodeId w : g.neighbors(failed)) {
      if (assigned[w] && length[w] < length[victim]) {
        victim = w;
      }
    }
    if (length[victim] >= length[failed]) {
      victim = failed;
    }
    if (length[victim] >= kMaxRelaxedLength) {
      throw std::runtime_error(
          "assign_weighted_slots: relaxation around node " + std::to_string(failed) +
          " exceeded period 2^28 — demands are structurally infeasible");
    }
    ++length[victim];
  }

  for (graph::NodeId v = 0; v < n; ++v) {
    if (length[v] != requested_length[v]) {
      result.relaxed.push_back(v);
    }
  }
  return result;
}

WeightedPeriodicScheduler::WeightedPeriodicScheduler(
    const graph::Graph& g, std::span<const std::uint64_t> requested_periods,
    WeightedPolicy policy)
    : SchedulerBase(g), assignment_(assign_weighted_slots(g, requested_periods, policy)) {
  if (!slots_conflict_free(g, assignment_.slots)) {
    // Unreachable by construction; guards future refactors.
    throw std::logic_error("WeightedPeriodicScheduler: assignment produced a conflict");
  }
}

std::vector<graph::NodeId> WeightedPeriodicScheduler::next_holiday() {
  const std::uint64_t t = advance();
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < graph().num_nodes(); ++v) {
    if (assignment_.slots[v].matches(t)) {
      happy.push_back(v);
    }
  }
  return happy;
}

}  // namespace fhg::core
