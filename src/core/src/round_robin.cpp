#include "fhg/core/round_robin.hpp"

#include <stdexcept>

namespace fhg::core {

RoundRobinColorScheduler::RoundRobinColorScheduler(const graph::Graph& g,
                                                   coloring::Coloring coloring)
    : SchedulerBase(g), coloring_(std::move(coloring)) {
  if (!coloring_.proper(g) || !coloring_.complete()) {
    throw std::invalid_argument("RoundRobinColorScheduler: coloring must be proper and complete");
  }
  num_colors_ = coloring_.max_color();
  classes_.assign(num_colors_, {});
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    classes_[coloring_.color(v) - 1].push_back(v);
  }
}

std::vector<graph::NodeId> RoundRobinColorScheduler::next_holiday() {
  const std::uint64_t t = advance();
  if (num_colors_ == 0) {
    return {};
  }
  return classes_[(t - 1) % num_colors_];
}

bool RoundRobinColorScheduler::happy_at(graph::NodeId v, std::uint64_t t) const noexcept {
  return num_colors_ != 0 && (t - 1) % num_colors_ + 1 == coloring_.color(v);
}

std::optional<std::uint64_t> RoundRobinColorScheduler::period_of(graph::NodeId) const {
  return num_colors_ == 0 ? std::optional<std::uint64_t>{} : num_colors_;
}

std::optional<std::uint64_t> RoundRobinColorScheduler::gap_bound(graph::NodeId v) const {
  return period_of(v);
}

std::optional<std::uint64_t> RoundRobinColorScheduler::phase_of(graph::NodeId v) const {
  return num_colors_ == 0 ? std::optional<std::uint64_t>{} : coloring_.color(v);
}

}  // namespace fhg::core
