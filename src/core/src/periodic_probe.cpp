#include "fhg/core/periodic_probe.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fhg::core {

namespace {

std::uint64_t gcd64(std::uint64_t a, std::uint64_t b) noexcept {
  while (b != 0) {
    const std::uint64_t r = a % b;
    a = b;
    b = r;
  }
  return a;
}

}  // namespace

bool general_slots_conflict_free(const graph::Graph& g, std::span<const GeneralSlot> slots) {
  if (slots.size() != g.num_nodes()) {
    return false;
  }
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const graph::NodeId v : g.neighbors(u)) {
      if (v <= u) {
        continue;
      }
      const std::uint64_t m = gcd64(slots[u].period, slots[v].period);
      if (slots[u].residue % m == slots[v].residue % m) {
        return false;  // progressions intersect (CRT)
      }
    }
  }
  return true;
}

std::optional<std::vector<GeneralSlot>> find_periodic_residues(
    const graph::Graph& g, std::span<const std::uint64_t> periods, std::uint64_t node_budget) {
  const graph::NodeId n = g.num_nodes();
  if (periods.size() != n) {
    throw std::invalid_argument("find_periodic_residues: one period per node required");
  }
  for (const std::uint64_t p : periods) {
    if (p == 0) {
      throw std::invalid_argument("find_periodic_residues: period 0 is meaningless");
    }
  }

  // Decreasing-degree order: constrained nodes first prunes earlier.
  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  std::vector<std::uint32_t> position(n);
  for (graph::NodeId i = 0; i < n; ++i) {
    position[order[i]] = i;
  }

  std::vector<GeneralSlot> slots(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    slots[v].period = periods[v];
  }
  std::vector<bool> assigned(n, false);
  std::uint64_t steps = 0;
  bool exhausted = false;

  const auto consistent = [&](graph::NodeId v, std::uint64_t r) {
    for (const graph::NodeId w : g.neighbors(v)) {
      if (!assigned[w]) {
        continue;
      }
      const std::uint64_t m = gcd64(periods[v], slots[w].period);
      if (r % m == slots[w].residue % m) {
        return false;
      }
    }
    return true;
  };

  const auto search = [&](auto&& self, graph::NodeId depth) -> bool {
    if (depth == n) {
      return true;
    }
    if (node_budget != 0 && ++steps > node_budget) {
      exhausted = true;
      return false;
    }
    const graph::NodeId v = order[depth];
    for (std::uint64_t r = 0; r < periods[v]; ++r) {
      if (!consistent(v, r)) {
        continue;
      }
      slots[v].residue = r;
      assigned[v] = true;
      if (self(self, depth + 1)) {
        return true;
      }
      assigned[v] = false;
      if (exhausted) {
        return false;
      }
    }
    return false;
  };

  if (search(search, 0)) {
    return slots;
  }
  return std::nullopt;
}

std::optional<std::vector<GeneralSlot>> find_periodic_slots_bounded(
    const graph::Graph& g, std::span<const std::uint64_t> max_periods,
    std::uint64_t node_budget) {
  const graph::NodeId n = g.num_nodes();
  if (max_periods.size() != n) {
    throw std::invalid_argument("find_periodic_slots_bounded: one bound per node required");
  }
  for (const std::uint64_t p : max_periods) {
    if (p == 0) {
      throw std::invalid_argument("find_periodic_slots_bounded: period bound 0 is meaningless");
    }
  }

  std::vector<graph::NodeId> order(n);
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) > g.degree(b);
  });

  std::vector<GeneralSlot> slots(n);
  std::vector<bool> assigned(n, false);
  std::uint64_t steps = 0;
  bool exhausted = false;

  const auto consistent = [&](graph::NodeId v, std::uint64_t period, std::uint64_t r) {
    for (const graph::NodeId w : g.neighbors(v)) {
      if (!assigned[w]) {
        continue;
      }
      const std::uint64_t m = gcd64(period, slots[w].period);
      if (r % m == slots[w].residue % m) {
        return false;
      }
    }
    return true;
  };

  const auto search = [&](auto&& self, graph::NodeId depth) -> bool {
    if (depth == n) {
      return true;
    }
    if (node_budget != 0 && ++steps > node_budget) {
      exhausted = true;
      return false;
    }
    const graph::NodeId v = order[depth];
    // Longer periods first: lower frequency constrains neighbors less.
    for (std::uint64_t period = max_periods[v]; period >= 1; --period) {
      for (std::uint64_t r = 0; r < period; ++r) {
        if (!consistent(v, period, r)) {
          continue;
        }
        slots[v] = GeneralSlot{r, period};
        assigned[v] = true;
        if (self(self, depth + 1)) {
          return true;
        }
        assigned[v] = false;
        if (exhausted) {
          return false;
        }
      }
    }
    return false;
  };

  if (search(search, 0)) {
    return slots;
  }
  return std::nullopt;
}

std::optional<SlackProbe> min_uniform_slack(const graph::Graph& g, std::uint32_t max_slack,
                                            std::uint64_t node_budget) {
  for (std::uint32_t k = 1; k <= max_slack; ++k) {
    std::vector<std::uint64_t> bounds(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      bounds[v] = g.degree(v) == 0 ? 1 : g.degree(v) + k;
    }
    auto slots = find_periodic_slots_bounded(g, bounds, node_budget);
    if (slots) {
      return SlackProbe{k, std::move(*slots)};
    }
  }
  return std::nullopt;
}

}  // namespace fhg::core
