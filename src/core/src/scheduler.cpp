#include "fhg/core/scheduler.hpp"

namespace fhg::core {

Scheduler::~Scheduler() = default;

std::optional<std::uint64_t> Scheduler::phase_of(graph::NodeId) const { return std::nullopt; }

std::vector<PeriodPhaseRow> Scheduler::period_phase_rows() const {
  if (!perfectly_periodic()) {
    return {};
  }
  const graph::NodeId n = graph().num_nodes();
  std::vector<PeriodPhaseRow> rows(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    const auto period = period_of(v);
    const auto phase = phase_of(v);
    if (!period || !phase || *period == 0 || *phase == 0) {
      return {};
    }
    rows[v] = PeriodPhaseRow{.period = *period, .phase = *phase};
  }
  return rows;
}

void Scheduler::advance_to(std::uint64_t t) {
  while (current_holiday() < t) {
    (void)next_holiday();
  }
}

}  // namespace fhg::core
