#include "fhg/core/scheduler.hpp"

namespace fhg::core {

Scheduler::~Scheduler() = default;

}  // namespace fhg::core
