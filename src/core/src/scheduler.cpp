#include "fhg/core/scheduler.hpp"

namespace fhg::core {

Scheduler::~Scheduler() = default;

std::optional<std::uint64_t> Scheduler::phase_of(graph::NodeId) const { return std::nullopt; }

void Scheduler::advance_to(std::uint64_t t) {
  while (current_holiday() < t) {
    (void)next_holiday();
  }
}

}  // namespace fhg::core
