#include "fhg/core/degree_bound.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "fhg/coding/iterated_log.hpp"
#include "fhg/parallel/rng.hpp"

namespace fhg::core {

std::vector<graph::NodeId> degree_bound_order(const graph::Graph& g) {
  std::vector<graph::NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), 0U);
  std::stable_sort(order.begin(), order.end(), [&g](graph::NodeId a, graph::NodeId b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

std::vector<coding::ScheduleSlot> assign_degree_bound_slots(const graph::Graph& g,
                                                            std::span<const graph::NodeId> order,
                                                            ResiduePick pick,
                                                            std::uint64_t seed) {
  const graph::NodeId n = g.num_nodes();
  if (order.size() != n) {
    throw std::invalid_argument("assign_degree_bound_slots: order must cover every node");
  }
  parallel::Rng rng(seed, /*stream=*/0x646562);
  std::vector<coding::ScheduleSlot> slots(n);
  std::vector<bool> assigned(n, false);
  for (const graph::NodeId v : order) {
    const std::uint32_t j = coding::ceil_log2(g.degree(v) + 1);
    const std::uint64_t modulus = std::uint64_t{1} << j;
    std::vector<bool> blocked(modulus, false);
    for (const graph::NodeId w : g.neighbors(v)) {
      if (!assigned[w]) {
        continue;
      }
      // Edge {v,w} collides at holidays t ≡ both residues; such t exists iff
      // the residues agree modulo the smaller period.  Under a valid
      // (non-increasing degree) order, slots[w].length >= j and this blocks
      // exactly one residue, as in the paper.
      const std::uint32_t jm = std::min(j, slots[w].length);
      const std::uint64_t step = std::uint64_t{1} << jm;
      for (std::uint64_t x = slots[w].residue & (step - 1); x < modulus; x += step) {
        blocked[x] = true;
      }
    }
    std::vector<std::uint64_t> free_residues;
    for (std::uint64_t x = 0; x < modulus; ++x) {
      if (!blocked[x]) {
        free_residues.push_back(x);
      }
    }
    if (free_residues.empty()) {
      throw std::runtime_error(
          "assign_degree_bound_slots: node " + std::to_string(v) +
          " found no free residue — the supplied order is not non-increasing in degree "
          "(the paper's §6 warning: low-degree nodes must not pick before high-degree ones)");
    }
    const std::uint64_t x = pick == ResiduePick::kSmallestFree
                                ? free_residues.front()
                                : free_residues[rng.uniform_below(free_residues.size())];
    slots[v] = coding::ScheduleSlot{x, j};
    assigned[v] = true;
  }
  return slots;
}

bool slots_conflict_free(const graph::Graph& g, std::span<const coding::ScheduleSlot> slots) {
  for (graph::NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const graph::NodeId v : g.neighbors(u)) {
      if (v <= u) {
        continue;
      }
      const auto& a = slots[u];
      const auto& b = slots[v];
      const std::uint32_t j = std::min(a.length, b.length);
      const std::uint64_t modulus = std::uint64_t{1} << j;
      if ((a.residue & (modulus - 1)) == (b.residue & (modulus - 1))) {
        return false;  // a common holiday t ≡ both residues exists (CRT)
      }
    }
  }
  return true;
}

DegreeBoundScheduler::DegreeBoundScheduler(const graph::Graph& g)
    : DegreeBoundScheduler(g, assign_degree_bound_slots(g, degree_bound_order(g))) {}

DegreeBoundScheduler::DegreeBoundScheduler(const graph::Graph& g,
                                           std::vector<coding::ScheduleSlot> slots)
    : SchedulerBase(g), slots_(std::move(slots)) {
  if (slots_.size() != g.num_nodes()) {
    throw std::invalid_argument("DegreeBoundScheduler: one slot per node required");
  }
  if (!slots_conflict_free(g, slots_)) {
    throw std::invalid_argument("DegreeBoundScheduler: slots conflict on some edge");
  }
}

std::vector<graph::NodeId> DegreeBoundScheduler::next_holiday() {
  const std::uint64_t t = advance();
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < graph().num_nodes(); ++v) {
    if (slots_[v].matches(t)) {
      happy.push_back(v);
    }
  }
  return happy;
}

std::optional<std::uint64_t> DegreeBoundScheduler::period_of(graph::NodeId v) const {
  return slots_[v].period();
}

std::optional<std::uint64_t> DegreeBoundScheduler::gap_bound(graph::NodeId v) const {
  return slots_[v].period();
}

}  // namespace fhg::core
