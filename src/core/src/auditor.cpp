#include "fhg/core/auditor.hpp"

#include <algorithm>

#include "fhg/graph/properties.hpp"

namespace fhg::core {

bool ScheduleAuditor::check(std::uint64_t t, std::span<const graph::NodeId> happy) {
  bool ok = true;
  if (!graph::is_independent_set(*graph_, happy)) {
    ok = false;
    if (first_violation_.empty()) {
      first_violation_ =
          "holiday " + std::to_string(t) + ": happy set is not an independent set";
    }
  }
  if (ok && coloring_ != nullptr && happy.size() > 1) {
    const coloring::Color c0 = coloring_->color(happy.front());
    const bool uniform = std::all_of(happy.begin(), happy.end(), [&](graph::NodeId v) {
      return coloring_->color(v) == c0;
    });
    if (!uniform) {
      ok = false;
      if (first_violation_.empty()) {
        first_violation_ =
            "holiday " + std::to_string(t) + ": two distinct colors happy simultaneously";
      }
    }
  }
  if (!ok) {
    ++violations_;
  }
  return ok;
}

}  // namespace fhg::core
