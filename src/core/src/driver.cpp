#include "fhg/core/driver.hpp"

#include <algorithm>

namespace fhg::core {

RunReport run_schedule(Scheduler& scheduler, const RunOptions& options) {
  const graph::Graph& g = scheduler.graph();
  const graph::NodeId n = g.num_nodes();

  scheduler.reset();
  GapTracker gaps(n);
  ScheduleAuditor independence(g, nullptr);
  ScheduleAuditor one_color(g, options.coloring);

  RunReport report;
  report.scheduler_name = scheduler.name();
  report.horizon = options.horizon;

  for (std::uint64_t t = 1; t <= options.horizon; ++t) {
    const std::vector<graph::NodeId> happy = scheduler.next_holiday();
    gaps.observe(t, happy);
    independence.check(t, happy);
    if (options.coloring != nullptr) {
      one_color.check(t, happy);
    }
    report.total_happy += happy.size();
    report.max_happy_set = std::max<std::uint64_t>(report.max_happy_set, happy.size());
  }

  report.independence_ok = independence.all_ok();
  report.one_color_ok = one_color.all_ok();
  report.first_violation = !independence.first_violation().empty()
                               ? independence.first_violation()
                               : one_color.first_violation();

  report.max_gap.resize(n);
  report.max_gap_with_tail.resize(n);
  report.appearances.resize(n);
  report.detected_period.resize(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    report.max_gap[v] = gaps.max_gap(v);
    report.max_gap_with_tail[v] = gaps.max_gap_with_tail(v, options.horizon);
    report.appearances[v] = gaps.appearances(v);
    report.detected_period[v] = gaps.detected_period(v);
    if (options.check_bounds) {
      const std::optional<std::uint64_t> bound = scheduler.gap_bound(v);
      if (bound && report.max_gap_with_tail[v] > *bound) {
        report.bounds_respected = false;
        report.bound_violators.push_back(v);
      }
    }
  }
  return report;
}

}  // namespace fhg::core
