#include "fhg/core/fcfg.hpp"

namespace fhg::core {

std::vector<graph::NodeId> FirstComeFirstGrabScheduler::happy_set_at(std::uint64_t t) const {
  const graph::Graph& g = graph();
  const graph::NodeId n = g.num_nodes();
  // Wake-up priorities: i.i.d. 64-bit draws keyed by (seed, holiday, node).
  // A node is happy iff its priority beats every neighbor's (ties broken by
  // id; with 64-bit draws ties are essentially nonexistent).
  std::vector<std::uint64_t> priority(n);
  for (graph::NodeId v = 0; v < n; ++v) {
    priority[v] = parallel::hash_draw(seed_, t, v);
  }
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < n; ++v) {
    bool first = true;
    for (const graph::NodeId w : g.neighbors(v)) {
      if (priority[w] < priority[v] || (priority[w] == priority[v] && w < v)) {
        first = false;
        break;
      }
    }
    if (first) {
      happy.push_back(v);
    }
  }
  return happy;
}

std::vector<graph::NodeId> FirstComeFirstGrabScheduler::next_holiday() {
  return happy_set_at(advance());
}

}  // namespace fhg::core
