#include "fhg/core/gathering.hpp"

#include <algorithm>
#include <stdexcept>

#include "fhg/graph/properties.hpp"

namespace fhg::core {

Gathering::Gathering(const graph::Graph& g) : graph_(&g) {
  const graph::NodeId n = g.num_nodes();
  toward_upper_.assign(g.num_edges(), false);  // default: toward lower endpoint
  // Build slot -> edge-id map by walking edges in canonical order.
  offsets_.assign(n + 1, 0);
  for (graph::NodeId v = 0; v < n; ++v) {
    offsets_[v + 1] = offsets_[v] + g.degree(v);
  }
  slot_edge_.assign(offsets_[n], 0);
  std::size_t edge_id = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const graph::NodeId v = nbrs[i];
      if (u < v) {
        // Assign this edge id to both endpoints' slots.
        slot_edge_[offsets_[u] + i] = edge_id;
        const auto back = g.neighbors(v);
        const auto it = std::lower_bound(back.begin(), back.end(), u);
        slot_edge_[offsets_[v] + static_cast<std::size_t>(it - back.begin())] = edge_id;
        ++edge_id;
      }
    }
  }
}

std::size_t Gathering::edge_index(graph::NodeId u, graph::NodeId v) const {
  const auto nbrs = graph_->neighbors(u);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) {
    throw std::invalid_argument("Gathering: no such edge");
  }
  return slot_edge_[offsets_[u] + static_cast<std::size_t>(it - nbrs.begin())];
}

bool Gathering::points_to(graph::NodeId u, graph::NodeId v) const {
  const std::size_t k = edge_index(u, v);
  const bool v_is_upper = v > u;
  return toward_upper_[k] == v_is_upper;
}

void Gathering::orient(graph::NodeId u, graph::NodeId v, graph::NodeId target) {
  if (target != u && target != v) {
    throw std::invalid_argument("Gathering::orient: target must be an endpoint");
  }
  const std::size_t k = edge_index(u, v);
  const graph::NodeId upper = std::max(u, v);
  toward_upper_[k] = (target == upper);
}

bool Gathering::happy(graph::NodeId v) const {
  for (const graph::NodeId w : graph_->neighbors(v)) {
    if (!points_to(w, v)) {
      return false;
    }
  }
  return true;
}

bool Gathering::satisfied(graph::NodeId v) const {
  for (const graph::NodeId w : graph_->neighbors(v)) {
    if (points_to(w, v)) {
      return true;
    }
  }
  return false;
}

std::vector<graph::NodeId> Gathering::happy_set() const {
  std::vector<graph::NodeId> result;
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (happy(v)) {
      result.push_back(v);
    }
  }
  return result;
}

std::vector<graph::NodeId> Gathering::satisfied_set() const {
  std::vector<graph::NodeId> result;
  for (graph::NodeId v = 0; v < graph_->num_nodes(); ++v) {
    if (satisfied(v)) {
      result.push_back(v);
    }
  }
  return result;
}

Gathering Gathering::from_happy_set(const graph::Graph& g,
                                    std::span<const graph::NodeId> happy_nodes) {
  if (!graph::is_independent_set(g, happy_nodes)) {
    throw std::invalid_argument("Gathering::from_happy_set: nodes are not independent");
  }
  const graph::NodeId n = g.num_nodes();
  Gathering gathering(g);

  std::vector<bool> is_happy(n, false);
  for (const graph::NodeId v : happy_nodes) {
    is_happy[v] = true;
  }

  // Forced edges: everything incident to a happy node points at it.  Any
  // non-happy node touching one of these edges is already "safe" (it has an
  // outgoing edge, so it cannot become a spurious sink).
  std::vector<bool> safe(n, false);
  for (const graph::NodeId v : happy_nodes) {
    for (const graph::NodeId w : g.neighbors(v)) {
      gathering.orient(w, v, v);
      safe[w] = true;
    }
  }

  // Route the remaining (free) edges — those joining two non-happy nodes —
  // so every non-happy node gains an outgoing edge where possible.  BFS over
  // the non-happy subgraph starting from all safe nodes; each discovered
  // node's discovery edge points *toward* the frontier (closer to safety).
  std::vector<bool> visited(n, false);
  std::vector<graph::NodeId> queue;
  for (graph::NodeId v = 0; v < n; ++v) {
    if (safe[v] && !is_happy[v]) {
      visited[v] = true;
      queue.push_back(v);
    }
  }
  const auto bfs_route = [&](std::vector<graph::NodeId>& frontier) {
    for (std::size_t head = 0; head < frontier.size(); ++head) {
      const graph::NodeId w = frontier[head];
      for (const graph::NodeId u : g.neighbors(w)) {
        if (!is_happy[u] && !visited[u]) {
          visited[u] = true;
          gathering.orient(u, w, w);  // u's escape route
          frontier.push_back(u);
        }
      }
    }
  };
  bfs_route(queue);

  // Components of non-happy nodes with no safe seed: no happy node anywhere
  // near.  If the component has a cycle, orient it cyclically and route the
  // rest toward it; if it is a tree, one sink is unavoidable — root there.
  for (graph::NodeId root = 0; root < n; ++root) {
    if (is_happy[root] || visited[root] || g.degree(root) == 0) {
      continue;
    }
    // Collect the component (within the non-happy subgraph).
    std::vector<graph::NodeId> component{root};
    visited[root] = true;
    std::vector<graph::NodeId> bfs_parent(n, n);
    std::optional<std::pair<graph::NodeId, graph::NodeId>> chord;
    for (std::size_t head = 0; head < component.size(); ++head) {
      const graph::NodeId u = component[head];
      for (const graph::NodeId w : g.neighbors(u)) {
        if (is_happy[w]) {
          continue;  // cannot happen (no safe seed ⇒ no happy neighbors)
        }
        if (!visited[w]) {
          visited[w] = true;
          bfs_parent[w] = u;
          component.push_back(w);
        } else if (w != bfs_parent[u] && bfs_parent[w] != u && !chord) {
          chord = std::make_pair(u, w);
        }
      }
    }
    // Tree edges point toward the BFS parent: every non-root node gets an
    // outgoing edge; the root is fixed below if a cycle exists.
    for (const graph::NodeId u : component) {
      if (bfs_parent[u] != n) {
        gathering.orient(u, bfs_parent[u], bfs_parent[u]);
      }
    }
    if (chord) {
      // Give the root an outgoing edge by re-routing along the chord path:
      // point the chord away from `a`, then flip a's ancestor chain so each
      // node keeps one outgoing edge and the root gains one.
      auto [a, b] = *chord;
      gathering.orient(a, b, b);  // a's outgoing is now the chord
      // Flip the path root -> ... -> a: walk from a up to the root, flipping
      // each tree edge downward (toward the child).  After flipping, node x
      // on the path points its tree edge at its child; x's own escape is the
      // next flipped edge above (or, for `a`, the chord).
      graph::NodeId walk = a;
      while (bfs_parent[walk] != n) {
        const graph::NodeId up = bfs_parent[walk];
        gathering.orient(up, walk, walk);  // flip: now points down to walk
        walk = up;
      }
    }
    // else: tree component with no happy node — `root` stays a sink
    // (unavoidable, documented in the header).
  }
  return gathering;
}

}  // namespace fhg::core
