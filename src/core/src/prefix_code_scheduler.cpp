#include "fhg/core/prefix_code_scheduler.hpp"

#include <stdexcept>

namespace fhg::core {

PrefixCodeScheduler::PrefixCodeScheduler(const graph::Graph& g, coloring::Coloring coloring,
                                         coding::CodeFamily family)
    : SchedulerBase(g), coloring_(std::move(coloring)), family_(family) {
  if (!coloring_.proper(g) || !coloring_.complete()) {
    throw std::invalid_argument("PrefixCodeScheduler: coloring must be proper and complete");
  }
  slots_.reserve(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    const coding::BitString codeword = coding::encode(family_, coloring_.color(v));
    if (codeword.size() > 63) {
      throw std::invalid_argument(
          "PrefixCodeScheduler: codeword for color " + std::to_string(coloring_.color(v)) +
          " exceeds 63 bits; the induced period would overflow the holiday counter");
    }
    slots_.push_back(coding::slot_of(codeword));
  }
}

std::vector<graph::NodeId> PrefixCodeScheduler::next_holiday() {
  const std::uint64_t t = advance();
  std::vector<graph::NodeId> happy;
  for (graph::NodeId v = 0; v < graph().num_nodes(); ++v) {
    if (slots_[v].matches(t)) {
      happy.push_back(v);
    }
  }
  return happy;
}

std::optional<std::uint64_t> PrefixCodeScheduler::period_of(graph::NodeId v) const {
  return slots_[v].period();
}

std::optional<std::uint64_t> PrefixCodeScheduler::gap_bound(graph::NodeId v) const {
  return slots_[v].period();
}

}  // namespace fhg::core
