#include "fhg/core/phased_greedy.hpp"

#include <algorithm>
#include <stdexcept>

namespace fhg::core {

PhasedGreedyScheduler::PhasedGreedyScheduler(const graph::Graph& g, coloring::Coloring initial)
    : SchedulerBase(g), initial_(std::move(initial)) {
  if (!initial_.proper(g) || !initial_.complete()) {
    throw std::invalid_argument("PhasedGreedyScheduler: coloring must be proper and complete");
  }
  reset();
}

void PhasedGreedyScheduler::reset() {
  rewind();
  colors_.assign(initial_.colors().begin(), initial_.colors().end());
  rebuild_buckets();
}

void PhasedGreedyScheduler::rebuild_buckets() {
  buckets_.clear();
  for (graph::NodeId v = 0; v < graph().num_nodes(); ++v) {
    buckets_[colors_[v]].push_back(v);
  }
}

std::vector<graph::NodeId> PhasedGreedyScheduler::next_holiday() {
  const std::uint64_t t = advance();
  const auto color_now = static_cast<coloring::Color>(t);

  std::vector<graph::NodeId> happy;
  const auto bucket = buckets_.find(color_now);
  if (bucket != buckets_.end()) {
    happy = std::move(bucket->second);
    buckets_.erase(bucket);
  }
  std::sort(happy.begin(), happy.end());

  // Recolor each happy node to the smallest color > t unused by neighbors.
  // Happy nodes are pairwise non-adjacent, so the order of recoloring within
  // the set cannot create conflicts; each sees neighbors' *current* colors,
  // which include the new colors of already-recolored same-holiday peers —
  // harmless, since those peers are not neighbors.
  for (const graph::NodeId v : happy) {
    const auto nbrs = graph().neighbors(v);
    // deg+1 candidate window (t, t + deg + 1] always contains a free color.
    std::vector<bool> taken(nbrs.size() + 2, false);
    for (const graph::NodeId w : nbrs) {
      const coloring::Color c = colors_[w];
      if (c > color_now && c <= color_now + taken.size() - 1) {
        taken[c - color_now] = true;
      }
    }
    coloring::Color next = color_now + 1;
    for (std::size_t offset = 1; offset < taken.size(); ++offset) {
      if (!taken[offset]) {
        next = color_now + static_cast<coloring::Color>(offset);
        break;
      }
    }
    colors_[v] = next;
    buckets_[next].push_back(v);
  }
  return happy;
}

}  // namespace fhg::core
