#include "fhg/core/gap_tracker.hpp"

#include <algorithm>
#include <limits>

namespace fhg::core {

namespace {
constexpr std::uint64_t kInconsistent = std::numeric_limits<std::uint64_t>::max();
}  // namespace

void GapTracker::observe(std::uint64_t t, std::span<const graph::NodeId> happy) {
  for (const graph::NodeId v : happy) {
    const std::uint64_t gap = t - last_seen_[v];
    max_gap_[v] = std::max(max_gap_[v], gap);
    if (last_seen_[v] > 0) {  // a real (appearance-to-appearance) gap
      if (uniform_gap_[v] == 0) {
        uniform_gap_[v] = gap;
      } else if (uniform_gap_[v] != gap) {
        uniform_gap_[v] = kInconsistent;
      }
    }
    last_seen_[v] = t;
    ++appearances_[v];
  }
}

std::uint64_t GapTracker::max_gap_with_tail(graph::NodeId v, std::uint64_t horizon) const noexcept {
  const std::uint64_t tail = horizon + 1 - last_seen_[v];
  return std::max(max_gap_[v], tail);
}

std::optional<std::uint64_t> GapTracker::detected_period(graph::NodeId v) const noexcept {
  if (appearances_[v] < 2 || uniform_gap_[v] == 0 || uniform_gap_[v] == kInconsistent) {
    return std::nullopt;
  }
  return uniform_gap_[v];
}

}  // namespace fhg::core
