#include "fhg/graph/dynamic_graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fhg::graph {

DynamicGraph::DynamicGraph(const Graph& g) : adjacency_(g.num_nodes()) {
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto nbrs = g.neighbors(v);
    adjacency_[v].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.num_edges();
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes() || v >= num_nodes()) {
    return false;
  }
  const auto& row = adjacency_[u];
  return std::binary_search(row.begin(), row.end(), v);
}

bool DynamicGraph::insert_edge(NodeId u, NodeId v) {
  if (u >= num_nodes() || v >= num_nodes()) {
    throw std::invalid_argument("DynamicGraph::insert_edge: endpoint out of range");
  }
  if (u == v) {
    throw std::invalid_argument("DynamicGraph::insert_edge: self-loop rejected at node " +
                                std::to_string(u));
  }
  auto& row_u = adjacency_[u];
  const auto it = std::lower_bound(row_u.begin(), row_u.end(), v);
  if (it != row_u.end() && *it == v) {
    return false;
  }
  row_u.insert(it, v);
  auto& row_v = adjacency_[v];
  row_v.insert(std::lower_bound(row_v.begin(), row_v.end(), u), u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::erase_edge(NodeId u, NodeId v) noexcept {
  if (u >= num_nodes() || v >= num_nodes() || u == v) {
    return false;
  }
  auto& row_u = adjacency_[u];
  const auto it = std::lower_bound(row_u.begin(), row_u.end(), v);
  if (it == row_u.end() || *it != v) {
    return false;
  }
  row_u.erase(it);
  auto& row_v = adjacency_[v];
  row_v.erase(std::lower_bound(row_v.begin(), row_v.end(), u));
  --num_edges_;
  return true;
}

NodeId DynamicGraph::add_node() {
  adjacency_.emplace_back();
  return static_cast<NodeId>(adjacency_.size() - 1);
}

std::uint32_t DynamicGraph::max_degree() const noexcept {
  std::uint32_t best = 0;
  for (const auto& row : adjacency_) {
    best = std::max(best, static_cast<std::uint32_t>(row.size()));
  }
  return best;
}

Graph DynamicGraph::snapshot() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : adjacency_[u]) {
      if (u < v) {
        edges.push_back(Edge{u, v});
      }
    }
  }
  return Graph::from_edges(num_nodes(), edges);
}

}  // namespace fhg::graph
