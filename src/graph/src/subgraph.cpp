#include "fhg/graph/subgraph.hpp"

#include <algorithm>
#include <stdexcept>

namespace fhg::graph {

InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes) {
  InducedSubgraph result;
  result.original.assign(nodes.begin(), nodes.end());
  std::sort(result.original.begin(), result.original.end());
  result.original.erase(std::unique(result.original.begin(), result.original.end()),
                        result.original.end());
  for (const NodeId v : result.original) {
    if (v >= g.num_nodes()) {
      throw std::invalid_argument("induced_subgraph: node out of range");
    }
  }
  // Old id -> new id map (dense vector; subgraphs here are small relative
  // to the host graph rarely enough that O(n) space is fine).
  std::vector<NodeId> remap(g.num_nodes(), g.num_nodes());
  for (NodeId i = 0; i < result.original.size(); ++i) {
    remap[result.original[i]] = i;
  }
  std::vector<Edge> edges;
  for (const NodeId u : result.original) {
    for (const NodeId w : g.neighbors(u)) {
      if (u < w && remap[w] != g.num_nodes()) {
        edges.push_back(Edge{remap[u], remap[w]});
      }
    }
  }
  result.graph = Graph::from_edges(static_cast<NodeId>(result.original.size()), edges);
  return result;
}

Graph complement(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    std::size_t cursor = 0;
    for (NodeId v = u + 1; v < n; ++v) {
      while (cursor < nbrs.size() && nbrs[cursor] < v) {
        ++cursor;
      }
      if (cursor < nbrs.size() && nbrs[cursor] == v) {
        continue;  // edge in G: absent from the complement
      }
      edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, edges);
}

}  // namespace fhg::graph
