#include "fhg/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "fhg/parallel/rng.hpp"

namespace fhg::graph {

using fhg::parallel::Rng;

namespace {

/// Maps a flat pair index k in [0, n(n-1)/2) to the k-th pair (u, v), u < v,
/// in lexicographic order.
Edge pair_from_index(NodeId n, std::uint64_t k) {
  // Row u starts at offset u*n - u*(u+3)/2 ... solve incrementally: for the
  // sizes used here a linear row walk would be O(n); use the closed form.
  // Number of pairs with first < u is f(u) = u*n - u*(u+1)/2.
  // Find largest u with f(u) <= k via the quadratic formula, then adjust.
  const double nd = static_cast<double>(n);
  double ud = std::floor(nd - 0.5 - std::sqrt((nd - 0.5) * (nd - 0.5) - 2.0 * static_cast<double>(k)));
  auto u = static_cast<std::uint64_t>(std::max(0.0, ud));
  auto f = [n](std::uint64_t x) { return x * n - x * (x + 1) / 2; };
  while (u + 1 < n && f(u + 1) <= k) {
    ++u;
  }
  while (u > 0 && f(u) > k) {
    --u;
  }
  const std::uint64_t v = u + 1 + (k - f(u));
  return Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)};
}

std::uint64_t pair_count(NodeId n) {
  return static_cast<std::uint64_t>(n) * (static_cast<std::uint64_t>(n) - 1) / 2;
}

}  // namespace

Graph gnp(NodeId n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("gnp: p must be in [0,1]");
  }
  std::vector<Edge> edges;
  if (n >= 2 && p > 0.0) {
    Rng rng(seed, /*stream=*/0x676E70);
    if (p >= 1.0) {
      for (NodeId u = 0; u < n; ++u) {
        for (NodeId v = u + 1; v < n; ++v) {
          edges.push_back(Edge{u, v});
        }
      }
    } else {
      // Geometric skipping over the flat pair index space.
      const std::uint64_t total = pair_count(n);
      const double log1mp = std::log1p(-p);
      std::uint64_t k = 0;
      while (true) {
        const double r = std::max(rng.uniform_real(), 1e-18);
        const double skip = std::floor(std::log(r) / log1mp);
        if (skip >= static_cast<double>(total - k)) {
          break;
        }
        k += static_cast<std::uint64_t>(skip);
        if (k >= total) {
          break;
        }
        edges.push_back(pair_from_index(n, k));
        ++k;
        if (k >= total) {
          break;
        }
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph gnm(NodeId n, std::size_t m, std::uint64_t seed) {
  const std::uint64_t total = pair_count(n);
  if (m > total) {
    throw std::invalid_argument("gnm: m exceeds the number of node pairs");
  }
  Rng rng(seed, /*stream=*/0x676E6D);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  while (chosen.size() < m) {
    chosen.insert(rng.uniform_below(total));
  }
  std::vector<Edge> edges;
  edges.reserve(m);
  for (const std::uint64_t k : chosen) {
    edges.push_back(pair_from_index(n, k));
  }
  return Graph::from_edges(n, edges);
}

Graph clique(NodeId n) {
  std::vector<Edge> edges;
  edges.reserve(pair_count(n));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      edges.push_back(Edge{u, v});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph cycle(NodeId n) {
  if (n < 3) {
    throw std::invalid_argument("cycle: need n >= 3");
  }
  std::vector<Edge> edges;
  edges.reserve(n);
  for (NodeId v = 0; v + 1 < n; ++v) {
    edges.push_back(Edge{v, static_cast<NodeId>(v + 1)});
  }
  edges.push_back(Edge{0, static_cast<NodeId>(n - 1)});
  return Graph::from_edges(n, edges);
}

Graph path(NodeId n) {
  std::vector<Edge> edges;
  if (n > 1) {
    edges.reserve(n - 1);
    for (NodeId v = 0; v + 1 < n; ++v) {
      edges.push_back(Edge{v, static_cast<NodeId>(v + 1)});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph star(NodeId n) {
  std::vector<Edge> edges;
  if (n > 1) {
    edges.reserve(n - 1);
    for (NodeId v = 1; v < n; ++v) {
      edges.push_back(Edge{0, v});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph complete_bipartite(NodeId a, NodeId b) {
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(a) * b);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      edges.push_back(Edge{u, static_cast<NodeId>(a + v)});
    }
  }
  return Graph::from_edges(a + b, edges);
}

Graph random_bipartite(NodeId a, NodeId b, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("random_bipartite: p must be in [0,1]");
  }
  Rng rng(seed, /*stream=*/0x626970);
  std::vector<Edge> edges;
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = 0; v < b; ++v) {
      if (rng.bernoulli(p)) {
        edges.push_back(Edge{u, static_cast<NodeId>(a + v)});
      }
    }
  }
  return Graph::from_edges(a + b, edges);
}

Graph complete_kpartite(NodeId k, NodeId group) {
  const NodeId n = k * group;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (u / group != v / group) {
        edges.push_back(Edge{u, v});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_tree(NodeId n, std::uint64_t seed) {
  if (n == 0) {
    return Graph(0);
  }
  if (n == 1) {
    return Graph(1);
  }
  if (n == 2) {
    const Edge only{0, 1};
    return Graph::from_edges(2, std::span<const Edge>(&only, 1));
  }
  // Decode a uniformly random Prüfer sequence of length n-2.
  Rng rng(seed, /*stream=*/0x747265);
  std::vector<NodeId> pruefer(n - 2);
  for (auto& x : pruefer) {
    x = static_cast<NodeId>(rng.uniform_below(n));
  }
  std::vector<std::uint32_t> degree(n, 1);
  for (const NodeId x : pruefer) {
    ++degree[x];
  }
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  // Standard O(n log n)-free decoding with a moving leaf pointer.
  NodeId ptr = 0;
  while (degree[ptr] != 1) {
    ++ptr;
  }
  NodeId leaf = ptr;
  for (const NodeId x : pruefer) {
    edges.push_back(Edge{std::min(leaf, x), std::max(leaf, x)});
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[ptr] != 1) {
        ++ptr;
      }
      leaf = ptr;
    }
  }
  edges.push_back(Edge{leaf, static_cast<NodeId>(n - 1)});
  return Graph::from_edges(n, edges);
}

Graph caterpillar(NodeId spine, NodeId legs) {
  if (spine == 0) {
    return Graph(0);
  }
  const NodeId n = spine * (legs + 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(spine) - 1 + static_cast<std::size_t>(spine) * legs);
  for (NodeId s = 0; s + 1 < spine; ++s) {
    edges.push_back(Edge{s, static_cast<NodeId>(s + 1)});
  }
  for (NodeId s = 0; s < spine; ++s) {
    for (NodeId l = 0; l < legs; ++l) {
      edges.push_back(Edge{s, static_cast<NodeId>(spine + s * legs + l)});
    }
  }
  return Graph::from_edges(n, edges);
}

Graph grid2d(NodeId rows, NodeId cols) {
  const NodeId n = rows * cols;
  std::vector<Edge> edges;
  auto id = [cols](NodeId r, NodeId c) { return static_cast<NodeId>(r * cols + c); };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        edges.push_back(Edge{id(r, c), id(r, c + 1)});
      }
      if (r + 1 < rows) {
        edges.push_back(Edge{id(r, c), id(r + 1, c)});
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed) {
  if (d >= n) {
    throw std::invalid_argument("random_regular: need d < n");
  }
  if ((static_cast<std::uint64_t>(n) * d) % 2 != 0) {
    throw std::invalid_argument("random_regular: n*d must be even");
  }
  if (d == 0) {
    return Graph(n);
  }
  Rng rng(seed, /*stream=*/0x726567);
  // Pairing model: repeat until the random perfect matching of stubs yields a
  // simple graph.  Success probability ~ exp(-(d^2-1)/4), fine for small d.
  for (std::uint32_t attempt = 0; attempt < 10'000; ++attempt) {
    std::vector<NodeId> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::uint32_t i = 0; i < d; ++i) {
        stubs.push_back(v);
      }
    }
    rng.shuffle(stubs);
    std::vector<Edge> edges;
    edges.reserve(stubs.size() / 2);
    bool simple = true;
    std::unordered_set<std::uint64_t> seen;
    seen.reserve(stubs.size());
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      const NodeId u = stubs[i];
      const NodeId v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      const std::uint64_t key =
          (static_cast<std::uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
      if (!seen.insert(key).second) {
        simple = false;
        break;
      }
      edges.push_back(Edge{u, v});
    }
    if (simple) {
      return Graph::from_edges(n, edges);
    }
  }
  throw std::runtime_error("random_regular: pairing model failed to converge");
}

Graph barabasi_albert(NodeId n, std::uint32_t m, std::uint64_t seed) {
  if (m == 0) {
    throw std::invalid_argument("barabasi_albert: m must be positive");
  }
  const NodeId m0 = m + 1;
  if (n < m0) {
    throw std::invalid_argument("barabasi_albert: need n >= m+1");
  }
  Rng rng(seed, /*stream=*/0x626173);
  std::vector<Edge> edges;
  // Repeated-endpoint list: choosing a uniform element of `targets` samples
  // proportionally to degree.
  std::vector<NodeId> targets;
  for (NodeId u = 0; u < m0; ++u) {
    for (NodeId v = u + 1; v < m0; ++v) {
      edges.push_back(Edge{u, v});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  std::unordered_set<NodeId> picked;
  for (NodeId v = m0; v < n; ++v) {
    picked.clear();
    while (picked.size() < m) {
      picked.insert(targets[rng.uniform_below(targets.size())]);
    }
    for (const NodeId u : picked) {
      edges.push_back(Edge{std::min(u, v), std::max(u, v)});
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return Graph::from_edges(n, edges);
}

Graph random_geometric(NodeId n, double radius, std::uint64_t seed) {
  if (radius < 0.0) {
    throw std::invalid_argument("random_geometric: radius must be non-negative");
  }
  Rng rng(seed, /*stream=*/0x726767);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (NodeId v = 0; v < n; ++v) {
    xs[v] = rng.uniform_real();
    ys[v] = rng.uniform_real();
  }
  // Grid-bucket the points so the expected cost is O(n + m) instead of the
  // all-pairs O(n²): only points within one cell of each other can be within
  // `radius`.
  const double r2 = radius * radius;
  const auto cells = static_cast<std::uint64_t>(std::max(1.0, std::floor(1.0 / std::max(radius, 1e-9))));
  std::unordered_map<std::uint64_t, std::vector<NodeId>> buckets;
  const auto cell_coords = [&](NodeId v) {
    const auto cx = std::min(cells - 1, static_cast<std::uint64_t>(xs[v] * static_cast<double>(cells)));
    const auto cy = std::min(cells - 1, static_cast<std::uint64_t>(ys[v] * static_cast<double>(cells)));
    return std::pair{cx, cy};
  };
  for (NodeId v = 0; v < n; ++v) {
    const auto [cx, cy] = cell_coords(v);
    buckets[cx * cells + cy].push_back(v);
  }
  std::vector<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    const auto [ucx, ucy] = cell_coords(u);
    const auto cx = static_cast<std::int64_t>(ucx);
    const auto cy = static_cast<std::int64_t>(ucy);
    for (std::int64_t dx = -1; dx <= 1; ++dx) {
      for (std::int64_t dy = -1; dy <= 1; ++dy) {
        const std::int64_t nx = cx + dx;
        const std::int64_t ny = cy + dy;
        if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(cells) ||
            ny >= static_cast<std::int64_t>(cells)) {
          continue;
        }
        const auto it = buckets.find(static_cast<std::uint64_t>(nx) * cells +
                                     static_cast<std::uint64_t>(ny));
        if (it == buckets.end()) {
          continue;
        }
        for (const NodeId v : it->second) {
          if (v <= u) {
            continue;
          }
          const double ddx = xs[u] - xs[v];
          const double ddy = ys[u] - ys[v];
          if (ddx * ddx + ddy * ddy <= r2) {
            edges.push_back(Edge{u, v});
          }
        }
      }
    }
  }
  return Graph::from_edges(n, edges);
}

Graph disjoint_union(const Graph& g, NodeId parts) {
  const NodeId block = g.num_nodes();
  std::vector<Edge> edges;
  edges.reserve(g.num_edges() * parts);
  const std::vector<Edge> base = g.edges();
  for (NodeId k = 0; k < parts; ++k) {
    const NodeId offset = k * block;
    for (const Edge& e : base) {
      edges.push_back(Edge{static_cast<NodeId>(e.first + offset),
                           static_cast<NodeId>(e.second + offset)});
    }
  }
  return Graph::from_edges(block * parts, edges);
}

}  // namespace fhg::graph
