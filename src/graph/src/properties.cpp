#include "fhg/graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace fhg::graph {

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const NodeId n = g.num_nodes();
  if (n == 0) {
    return stats;
  }
  stats.min = g.degree(0);
  double total = 0.0;
  for (NodeId v = 0; v < n; ++v) {
    const std::uint32_t d = g.degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    total += d;
  }
  stats.mean = total / n;
  stats.histogram.assign(stats.max + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    ++stats.histogram[g.degree(v)];
  }
  return stats;
}

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  const NodeId n = g.num_nodes();
  constexpr std::uint8_t kUnset = 2;
  std::vector<std::uint8_t> side(n, kUnset);
  std::queue<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (side[root] != kUnset) {
      continue;
    }
    side[root] = 0;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : g.neighbors(u)) {
        if (side[v] == kUnset) {
          side[v] = static_cast<std::uint8_t>(1 - side[u]);
          frontier.push(v);
        } else if (side[v] == side[u]) {
          return std::nullopt;  // odd cycle
        }
      }
    }
  }
  return side;
}

Components connected_components(const Graph& g) {
  const NodeId n = g.num_nodes();
  Components result;
  result.id.assign(n, n);  // n = "unvisited" sentinel
  std::queue<NodeId> frontier;
  for (NodeId root = 0; root < n; ++root) {
    if (result.id[root] != n) {
      continue;
    }
    const NodeId comp = result.count++;
    result.id[root] = comp;
    frontier.push(root);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const NodeId v : g.neighbors(u)) {
        if (result.id[v] == n) {
          result.id[v] = comp;
          frontier.push(v);
        }
      }
    }
  }
  return result;
}

DegeneracyResult degeneracy_order(const Graph& g) {
  const NodeId n = g.num_nodes();
  DegeneracyResult result;
  result.order.reserve(n);
  if (n == 0) {
    return result;
  }
  // Matula–Beck bucket queue.
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_deg = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = g.degree(v);
    max_deg = std::max(max_deg, degree[v]);
  }
  std::vector<std::vector<NodeId>> buckets(max_deg + 1);
  for (NodeId v = 0; v < n; ++v) {
    buckets[degree[v]].push_back(v);
  }
  std::vector<bool> removed(n, false);
  std::uint32_t cursor = 0;
  for (NodeId step = 0; step < n; ++step) {
    while (cursor <= max_deg && buckets[cursor].empty()) {
      ++cursor;
    }
    // Buckets can gain lower-degree entries after removals; rewind.
    while (cursor > 0 && !buckets[cursor - 1].empty()) {
      --cursor;
    }
    const NodeId u = buckets[cursor].back();
    buckets[cursor].pop_back();
    if (removed[u] || degree[u] != cursor) {
      // Stale entry (node was removed or moved to a lower bucket since this
      // entry was pushed); retry this step.
      --step;
      continue;
    }
    removed[u] = true;
    result.order.push_back(u);
    result.degeneracy = std::max(result.degeneracy, degree[u]);
    for (const NodeId w : g.neighbors(u)) {
      if (!removed[w] && degree[w] > 0) {
        --degree[w];
        buckets[degree[w]].push_back(w);  // old entry left stale
      }
    }
  }
  return result;
}

std::size_t triangle_count(const Graph& g) {
  std::size_t triangles = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nu = g.neighbors(u);
    for (const NodeId v : nu) {
      if (v <= u) {
        continue;
      }
      const auto nv = g.neighbors(v);
      // Count common neighbors w with w > v to count each triangle once.
      auto iu = std::lower_bound(nu.begin(), nu.end(), v + 1);
      auto iv = std::lower_bound(nv.begin(), nv.end(), v + 1);
      while (iu != nu.end() && iv != nv.end()) {
        if (*iu < *iv) {
          ++iu;
        } else if (*iv < *iu) {
          ++iv;
        } else {
          ++triangles;
          ++iu;
          ++iv;
        }
      }
    }
  }
  return triangles;
}

bool is_independent_set(const Graph& g, std::span<const NodeId> nodes) {
  std::vector<bool> in_set(g.num_nodes(), false);
  for (const NodeId v : nodes) {
    in_set[v] = true;
  }
  for (const NodeId v : nodes) {
    for (const NodeId w : g.neighbors(v)) {
      if (in_set[w]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace fhg::graph
