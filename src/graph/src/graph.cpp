#include "fhg/graph/graph.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace fhg::graph {

namespace {

void check_endpoints(NodeId n, NodeId u, NodeId v) {
  if (u >= n || v >= n) {
    throw std::invalid_argument("graph edge endpoint out of range: {" + std::to_string(u) + "," +
                                std::to_string(v) + "} with n=" + std::to_string(n));
  }
  if (u == v) {
    throw std::invalid_argument("self-loop rejected at node " + std::to_string(u) +
                                " (a child cannot marry a sibling in the conflict model)");
  }
}

}  // namespace

Graph::Graph(NodeId n) : offsets_(static_cast<std::size_t>(n) + 1, 0) {}

bool Graph::has_edge(NodeId u, NodeId v) const noexcept {
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges());
  for (NodeId u = 0; u < num_nodes(); ++u) {
    for (const NodeId v : neighbors(u)) {
      if (u < v) {
        result.push_back(Edge{u, v});
      }
    }
  }
  return result;
}

Graph Graph::from_edges(NodeId n, std::span<const Edge> edges) {
  // Normalize, validate, deduplicate.
  std::vector<Edge> normalized;
  normalized.reserve(edges.size());
  for (const Edge& e : edges) {
    check_endpoints(n, e.first, e.second);
    normalized.push_back(e.first < e.second ? e : Edge{e.second, e.first});
  }
  std::sort(normalized.begin(), normalized.end());
  normalized.erase(std::unique(normalized.begin(), normalized.end()), normalized.end());

  Graph g(n);
  // Degree counting pass.
  std::vector<std::size_t> degree(n, 0);
  for (const Edge& e : normalized) {
    ++degree[e.first];
    ++degree[e.second];
  }
  for (NodeId v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
  }
  g.adjacency_.resize(normalized.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : normalized) {
    g.adjacency_[cursor[e.first]++] = e.second;
    g.adjacency_[cursor[e.second]++] = e.first;
  }
  // Sorted edge input plus two-sided fill yields sorted rows for the `first`
  // side but not necessarily the `second`; sort each row to restore the
  // invariant (rows are short; this is build-time only).
  for (NodeId v = 0; v < n; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }
  for (NodeId v = 0; v < n; ++v) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(v));
  }
  return g;
}

void GraphBuilder::add_edge(NodeId u, NodeId v) {
  check_endpoints(num_nodes_, u, v);
  edges_.push_back(u < v ? Edge{u, v} : Edge{v, u});
}

Graph GraphBuilder::build() && {
  return Graph::from_edges(num_nodes_, edges_);
}

}  // namespace fhg::graph
