#include "fhg/graph/io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace fhg::graph {

namespace {

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("graph IO: " + what);
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  bool have_header = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream fields(line);
    if (!have_header) {
      if (!(fields >> n >> m)) {
        malformed("expected header line 'n m'");
      }
      have_header = true;
      edges.reserve(m);
      continue;
    }
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) {
      malformed("expected edge line 'u v', got: " + line);
    }
    if (u >= n || v >= n) {
      malformed("edge endpoint out of range in line: " + line);
    }
    edges.push_back(Edge{static_cast<NodeId>(u), static_cast<NodeId>(v)});
  }
  if (!have_header) {
    malformed("empty input");
  }
  if (edges.size() != m) {
    malformed("header declared " + std::to_string(m) + " edges but found " +
              std::to_string(edges.size()));
  }
  return Graph::from_edges(static_cast<NodeId>(n), edges);
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    out << e.first << ' ' << e.second << '\n';
  }
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  bool have_problem = false;
  std::vector<Edge> edges;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') {
      continue;
    }
    std::istringstream fields(line);
    char tag = 0;
    fields >> tag;
    if (tag == 'p') {
      std::string kind;
      if (!(fields >> kind >> n >> m) || kind != "edge") {
        malformed("bad DIMACS problem line: " + line);
      }
      have_problem = true;
      edges.reserve(m);
    } else if (tag == 'e') {
      if (!have_problem) {
        malformed("edge line before problem line");
      }
      std::uint64_t u = 0;
      std::uint64_t v = 0;
      if (!(fields >> u >> v) || u == 0 || v == 0 || u > n || v > n) {
        malformed("bad DIMACS edge line: " + line);
      }
      edges.push_back(Edge{static_cast<NodeId>(u - 1), static_cast<NodeId>(v - 1)});
    } else {
      malformed("unknown DIMACS line tag in: " + line);
    }
  }
  if (!have_problem) {
    malformed("missing DIMACS problem line");
  }
  return Graph::from_edges(static_cast<NodeId>(n), edges);
}

void write_dimacs(std::ostream& out, const Graph& g, const std::string& comment) {
  if (!comment.empty()) {
    out << "c " << comment << '\n';
  }
  out << "p edge " << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    out << "e " << (e.first + 1) << ' ' << (e.second + 1) << '\n';
  }
}

Graph load_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    malformed("cannot open file: " + path);
  }
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".col") == 0) {
    return read_dimacs(in);
  }
  return read_edge_list(in);
}

}  // namespace fhg::graph
