#pragma once

/// \file properties.hpp
/// Structural graph queries used by schedulers, tests and experiment tables:
/// degree statistics, bipartiteness (the §1 two-group society), connected
/// components, degeneracy (smallest-last) ordering, and triangle counting
/// (triangle-free graphs admit the Pettie–Su coloring mentioned in §5).

#include <cstdint>
#include <optional>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::graph {

/// Summary of the degree distribution.
struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double mean = 0.0;
  /// histogram[d] = number of nodes of degree d; size max+1.
  std::vector<std::size_t> histogram;
};

/// Computes degree statistics in one sweep.
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// If `g` is bipartite, returns a side assignment (0/1 per node, BFS
/// 2-coloring); otherwise `std::nullopt`.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);

/// Connected components: returns (component id per node, component count).
struct Components {
  std::vector<NodeId> id;
  NodeId count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

/// Smallest-last (degeneracy) ordering via the Matula–Beck bucket algorithm,
/// `O(n + m)`.  `order[i]` is the i-th node removed; greedy coloring along the
/// *reverse* of this order uses at most degeneracy+1 colors.
struct DegeneracyResult {
  std::vector<NodeId> order;
  std::uint32_t degeneracy = 0;
};
[[nodiscard]] DegeneracyResult degeneracy_order(const Graph& g);

/// Exact triangle count (sum over edges of sorted-adjacency intersections).
[[nodiscard]] std::size_t triangle_count(const Graph& g);

/// True iff `nodes` is an independent set of `g` (no two adjacent).
/// `nodes` need not be sorted.
[[nodiscard]] bool is_independent_set(const Graph& g, std::span<const NodeId> nodes);

}  // namespace fhg::graph
