#pragma once

/// \file graph.hpp
/// The immutable conflict graph and its builder.
///
/// The paper's universe is a fixed, simple, undirected *conflict graph*
/// `G = (P, E)`: nodes are parents; an edge joins two parents whose children
/// are in a relationship.  All schedulers in `fhg::core` take a `Graph` by
/// const reference.
///
/// Representation: compressed sparse rows (CSR).  Neighbor lists are sorted,
/// which gives `O(log d)` adjacency tests and cache-friendly sweeps — the
/// right trade-off for the read-dominated workloads here (a schedule performs
/// millions of neighbor scans on a graph that never changes).  Mutation is
/// the job of `DynamicGraph` (see dynamic_graph.hpp), which converts to CSR
/// snapshots on demand.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace fhg::graph {

/// Node identifier: dense indices `0 .. num_nodes()-1`.
using NodeId = std::uint32_t;

/// An undirected edge, stored with `first < second`.
struct Edge {
  NodeId first;
  NodeId second;

  friend constexpr bool operator==(const Edge&, const Edge&) noexcept = default;
  friend constexpr auto operator<=>(const Edge&, const Edge&) noexcept = default;
};

/// Immutable simple undirected graph in CSR form.
///
/// Invariants (checked at build time):
///  * no self-loops, no parallel edges;
///  * neighbor lists sorted ascending;
///  * `offsets.size() == num_nodes()+1`, `adjacency.size() == 2*num_edges()`.
class Graph {
 public:
  /// Empty graph with `n` isolated nodes.
  explicit Graph(NodeId n = 0);

  /// Number of nodes `|P|`.
  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(offsets_.size() - 1);
  }

  /// Number of undirected edges `|E|`.
  [[nodiscard]] std::size_t num_edges() const noexcept { return adjacency_.size() / 2; }

  /// Degree of `v` (the paper's `d_p`, the number of married children).
  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbors of `v`.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  /// Adjacency test by binary search: `O(log deg(u))`.
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Maximum degree `Δ`.
  [[nodiscard]] std::uint32_t max_degree() const noexcept { return max_degree_; }

  /// All edges as `(first < second)` pairs, sorted lexicographically.
  [[nodiscard]] std::vector<Edge> edges() const;

  /// True iff the graph has no nodes.
  [[nodiscard]] bool empty() const noexcept { return num_nodes() == 0; }

  /// Builds a CSR graph from an edge list over `n` nodes.  Duplicate edges
  /// (in either orientation) are collapsed; self-loops are rejected.
  /// Throws `std::invalid_argument` on out-of-range endpoints or self-loops.
  [[nodiscard]] static Graph from_edges(NodeId n, std::span<const Edge> edges);

 private:
  friend class GraphBuilder;

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m, sorted per node
  std::uint32_t max_degree_ = 0;
};

/// Incremental edge-list accumulator producing an immutable `Graph`.
///
/// Usage:
/// ```
/// GraphBuilder b(5);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// Graph g = std::move(b).build();
/// ```
class GraphBuilder {
 public:
  explicit GraphBuilder(NodeId n) : num_nodes_(n) {}

  /// Number of nodes the final graph will have.
  [[nodiscard]] NodeId num_nodes() const noexcept { return num_nodes_; }

  /// Records the undirected edge `{u, v}`.  Duplicates are tolerated and
  /// collapsed at build time.  Throws `std::invalid_argument` for self-loops
  /// or out-of-range endpoints.
  void add_edge(NodeId u, NodeId v);

  /// Number of edge records so far (before deduplication).
  [[nodiscard]] std::size_t pending_edges() const noexcept { return edges_.size(); }

  /// Finalizes into a CSR `Graph`. The builder is consumed.
  [[nodiscard]] Graph build() &&;

 private:
  NodeId num_nodes_;
  std::vector<Edge> edges_;
};

}  // namespace fhg::graph
