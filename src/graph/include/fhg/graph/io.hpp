#pragma once

/// \file io.hpp
/// Plain-text graph serialization: whitespace edge lists and DIMACS.
///
/// Formats:
///  * **Edge list** — first line `n m`, then `m` lines `u v` (0-based).
///    Lines starting with `#` are comments.
///  * **DIMACS** — `c` comment lines, one `p edge <n> <m>` line, then
///    `e <u> <v>` lines with 1-based endpoints (the classic coloring format).

#include <iosfwd>
#include <string>

#include "fhg/graph/graph.hpp"

namespace fhg::graph {

/// Parses the edge-list format. Throws `std::runtime_error` on malformed
/// input (bad counts, out-of-range endpoints, trailing garbage).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Writes the edge-list format.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses DIMACS `p edge` format (1-based `e u v` lines).
[[nodiscard]] Graph read_dimacs(std::istream& in);

/// Writes DIMACS format with a generator comment.
void write_dimacs(std::ostream& out, const Graph& g, const std::string& comment = {});

/// Convenience: load either format from a file, dispatching on extension
/// (`.col` => DIMACS, otherwise edge list).
[[nodiscard]] Graph load_graph_file(const std::string& path);

}  // namespace fhg::graph
