#pragma once

/// \file dynamic_graph.hpp
/// Mutable adjacency-set graph for the dynamic setting of Section 6.
///
/// Relationships form and dissolve: `DynamicGraph` supports edge insertion
/// and deletion in `O(log d)` and produces CSR `Graph` snapshots for the
/// static algorithms.  `fhg::dynamic::DynamicPrefixCodeScheduler` listens to
/// its mutations to trigger recoloring.

#include <cstdint>
#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::graph {

/// Simple undirected graph under edge insertions/deletions.
/// Neighbor sets are kept as sorted vectors (graphs here are sparse and
/// degrees small; sorted vectors beat `std::set` by a wide margin).
class DynamicGraph {
 public:
  /// `n` isolated nodes.
  explicit DynamicGraph(NodeId n) : adjacency_(n) {}

  /// Snapshot constructor.
  explicit DynamicGraph(const Graph& g);

  [[nodiscard]] NodeId num_nodes() const noexcept {
    return static_cast<NodeId>(adjacency_.size());
  }

  [[nodiscard]] std::size_t num_edges() const noexcept { return num_edges_; }

  [[nodiscard]] std::uint32_t degree(NodeId v) const noexcept {
    return static_cast<std::uint32_t>(adjacency_[v].size());
  }

  /// Sorted neighbors of `v`; the span is invalidated by mutations.
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const noexcept {
    return {adjacency_[v].data(), adjacency_[v].size()};
  }

  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  /// Inserts `{u,v}`. Returns false (and does nothing) if already present.
  /// Throws `std::invalid_argument` on self-loops / out-of-range endpoints.
  bool insert_edge(NodeId u, NodeId v);

  /// Removes `{u,v}`. Returns false if not present.
  bool erase_edge(NodeId u, NodeId v) noexcept;

  /// Appends a new isolated node, returning its id.
  NodeId add_node();

  /// Current maximum degree (computed on demand, `O(n)`).
  [[nodiscard]] std::uint32_t max_degree() const noexcept;

  /// Immutable CSR snapshot of the current topology.
  [[nodiscard]] Graph snapshot() const;

 private:
  std::vector<std::vector<NodeId>> adjacency_;
  std::size_t num_edges_ = 0;
};

}  // namespace fhg::graph
