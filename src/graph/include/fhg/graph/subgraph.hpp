#pragma once

/// \file subgraph.hpp
/// Derived graphs: induced subgraphs (the coalition game of Appendix A.2
/// evaluates `v(S) = MIS(G[S])`) and complements (independent sets of `G`
/// are cliques of `Ḡ` — the hardness bridge in Appendix A.1's references).

#include <vector>

#include "fhg/graph/graph.hpp"

namespace fhg::graph {

/// The subgraph induced by `nodes` (duplicates ignored), with vertices
/// re-indexed `0..k-1` in the sorted order of `nodes`.
struct InducedSubgraph {
  Graph graph;
  /// `original[i]` = the input-graph id of induced vertex `i`.
  std::vector<NodeId> original;
};

[[nodiscard]] InducedSubgraph induced_subgraph(const Graph& g, std::span<const NodeId> nodes);

/// The complement graph `Ḡ`: same vertices, `{u,v} ∈ Ḡ` iff `{u,v} ∉ G`.
/// Quadratic in `n` by nature; intended for the small instances where the
/// MIS/clique duality is exercised.
[[nodiscard]] Graph complement(const Graph& g);

}  // namespace fhg::graph
