#pragma once

/// \file generators.hpp
/// Synthetic conflict-graph families used throughout the test suite and the
/// experiment harness.
///
/// The paper motivates several structures explicitly: bipartite "intergroup
/// marriage" societies (§1), cliques (the `d+1` lower bound), and general
/// graphs of bounded degree.  The experiment harness additionally sweeps
/// Erdős–Rényi, random-regular, preferential-attachment (heavy-tailed degree,
/// the interesting regime for *local* bounds), grids (cellular-radio
/// interference), trees and caterpillars.
///
/// All generators are deterministic functions of their parameters and an
/// explicit seed.

#include <cstdint>

#include "fhg/graph/graph.hpp"

namespace fhg::graph {

/// Erdős–Rényi G(n, p): each of the n(n-1)/2 pairs appears independently
/// with probability `p`.  Uses geometric skipping, `O(n + m)` expected time.
[[nodiscard]] Graph gnp(NodeId n, double p, std::uint64_t seed);

/// Uniform G(n, m): exactly `m` distinct edges sampled uniformly.
/// Throws if `m` exceeds n(n-1)/2.
[[nodiscard]] Graph gnm(NodeId n, std::size_t m, std::uint64_t seed);

/// Complete graph K_n — the in-law worst case: every parent waits n years
/// under any schedule.
[[nodiscard]] Graph clique(NodeId n);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph cycle(NodeId n);

/// Path P_n.
[[nodiscard]] Graph path(NodeId n);

/// Star K_{1,n-1}: node 0 is the hub (the parent with many children).
[[nodiscard]] Graph star(NodeId n);

/// Complete bipartite K_{a,b}; nodes 0..a-1 on the left.
[[nodiscard]] Graph complete_bipartite(NodeId a, NodeId b);

/// Random bipartite graph: sides of size `a` and `b`, each cross pair kept
/// with probability `p`.  The §1 "intergroup marriage" society.
[[nodiscard]] Graph random_bipartite(NodeId a, NodeId b, double p, std::uint64_t seed);

/// Complete k-partite graph with `k` groups of size `group`.
[[nodiscard]] Graph complete_kpartite(NodeId k, NodeId group);

/// Uniform random labelled tree on `n` nodes (via Prüfer sequences).
[[nodiscard]] Graph random_tree(NodeId n, std::uint64_t seed);

/// Caterpillar: a spine path of length `spine`, each spine node with `legs`
/// pendant leaves.  Total nodes: spine * (legs + 1).
[[nodiscard]] Graph caterpillar(NodeId spine, NodeId legs);

/// 2-D grid graph of `rows * cols` nodes (4-neighborhood).  Models planar
/// radio-interference topologies.
[[nodiscard]] Graph grid2d(NodeId rows, NodeId cols);

/// Random d-regular graph via the pairing model with restarts.
/// Requires n*d even and d < n.  For the d values used here (≤ 32) the
/// rejection loop terminates quickly.
[[nodiscard]] Graph random_regular(NodeId n, std::uint32_t d, std::uint64_t seed);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m0 = m+1` nodes; each new node attaches to `m` distinct existing nodes
/// chosen proportionally to degree.  Produces the heavy-tailed degree
/// distributions where per-degree bounds shine.
[[nodiscard]] Graph barabasi_albert(NodeId n, std::uint32_t m, std::uint64_t seed);

/// Random geometric graph: `n` points uniform in the unit square, an edge
/// whenever two points are within Euclidean distance `radius`.  The standard
/// model for radio-interference conflict graphs; grid-bucketed, `O(n + m)`
/// expected time.
[[nodiscard]] Graph random_geometric(NodeId n, double radius, std::uint64_t seed);

/// Disjoint union of `parts` copies of `g` (useful for building societies of
/// independent families).
[[nodiscard]] Graph disjoint_union(const Graph& g, NodeId parts);

}  // namespace fhg::graph
