// E4 — Theorem 4.2: the Elias-omega scheduler is perfectly periodic with
// period 2^ρ(c) ≤ 2^{1+log* c} · φ(c) for color c, and no holiday makes two
// distinct colors happy.
//
// Regenerates:
//   (a) per-color table: measured period (from a driven run) vs 2^ρ(c) vs
//       the theorem bound, plus the φ(c) lower-bound reference;
//   (b) the same scheduler under gamma/delta codes (ablation: omega wins
//       asymptotically, gamma is better for small colors — the crossover);
//   (c) the one-color-per-holiday audit over the whole run.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"

int main() {
  using namespace fhg;
  bench::banner("E4", "Theorem 4.2, Section 4.2",
                "Elias-code schedulers: measured period == 2^|K(c)|, bounded by 2^{1+log*c} phi(c)");

  const graph::Graph g = graph::barabasi_albert(1500, 3, 9);
  const coloring::Coloring colors = coloring::dsatur_color(g);
  std::cout << "Workload: barabasi-albert n=1500 m=3, DSATUR colors = " << colors.max_color()
            << "\n";

  // (a)+(b): per color and per code family.
  analysis::Table table({"code", "color", "nodes", "measured period", "2^len", "paper bound",
                         "phi(c) ref", "exact"});
  bool audits_ok = true;
  for (const coding::CodeFamily family :
       {coding::CodeFamily::kEliasGamma, coding::CodeFamily::kEliasDelta,
        coding::CodeFamily::kEliasOmega}) {
    core::PrefixCodeScheduler scheduler(g, colors, family);
    std::uint64_t horizon = 64;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      horizon = std::max(horizon, 2 * scheduler.period_of(v).value());
    }
    const auto report =
        core::run_schedule(scheduler, {.horizon = horizon, .coloring = &colors});
    audits_ok = audits_ok && report.independence_ok && report.one_color_ok;

    // One row per color value.
    std::vector<std::uint64_t> nodes_of_color(colors.max_color() + 1, 0);
    std::vector<std::uint64_t> measured(colors.max_color() + 1, 0);
    bool exact = true;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto c = colors.color(v);
      ++nodes_of_color[c];
      const auto detected = report.detected_period[v];
      measured[c] = detected.value_or(0);
      exact = exact && detected == scheduler.period_of(v);
    }
    for (coloring::Color c = 1; c <= colors.max_color(); ++c) {
      if (nodes_of_color[c] == 0) {
        continue;
      }
      const std::uint64_t len = coding::code_length(family, c);
      table.row()
          .add(coding::code_family_name(family))
          .add(std::uint64_t{c})
          .add(nodes_of_color[c])
          .add(measured[c])
          .add(std::uint64_t{1} << len)
          .add(family == coding::CodeFamily::kEliasOmega
                   ? coding::omega_period_bound(c)
                   : std::exp2(static_cast<double>(len)),
               1)
          .add(coding::phi(static_cast<double>(c)), 1)
          .add(exact);
    }
  }
  table.print(std::cout);
  std::cout << "One-color-per-holiday + independence audits: " << (audits_ok ? "PASS" : "FAIL")
            << "\n";

  // (c) Code-length crossover for large colors: omega beats gamma/delta as
  // colors grow — period ratio table at exponentially spaced colors.
  analysis::Table crossover(
      {"color", "gamma period", "delta period", "omega period", "omega bound", "phi(c)"});
  for (std::uint64_t c : {2ULL, 8ULL, 32ULL, 256ULL, 4096ULL, 65536ULL, 1048576ULL}) {
    crossover.row()
        .add(c)
        .add(std::exp2(static_cast<double>(coding::elias_gamma_length(c))), 0)
        .add(std::exp2(static_cast<double>(coding::elias_delta_length(c))), 0)
        .add(std::exp2(static_cast<double>(coding::elias_omega_length(c))), 0)
        .add(coding::omega_period_bound(c), 0)
        .add(coding::phi(static_cast<double>(c)), 0);
  }
  std::cout << "\nCode ablation — induced period by color (gamma ~ c^2, delta ~ c log^2 c,\n"
               "omega ~ phi(c) · 2^{log* c}; gamma/delta win on tiny colors, omega asymptotically):\n";
  crossover.print(std::cout);
  return audits_ok ? 0 : 1;
}
