// E13 — the distributed substrate (DESIGN.md §3 substitution): Johansson's
// randomized (deg+1)-coloring, standing in for BEPS, must deliver (a) proper
// colorings with col ≤ deg+1 and (b) round counts growing like O(log n);
// Luby's MIS is profiled alongside as the classic symmetry-breaking
// companion (§1.3).
//
// Regenerates: rounds vs n table (the log-shape), message volume, color
// quality, plus google-benchmark wall-clock for the simulator itself.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fhg/distributed/johansson.hpp"
#include "fhg/distributed/luby.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/properties.hpp"

namespace {

using namespace fhg;

void BM_JohanssonColoring(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 7);
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto run = distributed::johansson_color(g, 11);
    rounds = run.stats.rounds;
    benchmark::DoNotOptimize(run.coloring.colors().data());
  }
  state.counters["rounds"] = static_cast<double>(rounds);
}
BENCHMARK(BM_JohanssonColoring)->RangeMultiplier(4)->Range(1'024, 65'536)
    ->Unit(benchmark::kMillisecond);

void BM_JohanssonColoringParallel(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 7);
  parallel::ThreadPool pool;
  for (auto _ : state) {
    const auto run = distributed::johansson_color(g, 11, &pool);
    benchmark::DoNotOptimize(run.coloring.colors().data());
  }
}
BENCHMARK(BM_JohanssonColoringParallel)->RangeMultiplier(4)->Range(1'024, 65'536)
    ->Unit(benchmark::kMillisecond);

void BM_LubyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 7);
  for (auto _ : state) {
    const auto run = distributed::luby_mis(g, 13);
    benchmark::DoNotOptimize(run.independent_set.data());
  }
}
BENCHMARK(BM_LubyMis)->RangeMultiplier(4)->Range(1'024, 65'536)->Unit(benchmark::kMillisecond);

void print_round_table() {
  bench::banner("E13", "substrate ([16] Johansson; Luby MIS; DESIGN.md §3)",
                "Distributed coloring: rounds ~ O(log n), colors <= deg+1");
  analysis::Table table({"n", "Delta", "rounds", "rounds/log2(n)", "messages", "max color",
                         "col<=d+1", "Luby rounds"});
  for (const graph::NodeId n : {1'024U, 4'096U, 16'384U, 65'536U, 262'144U}) {
    const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 7);
    const auto coloring_run = distributed::johansson_color(g, 11);
    const auto mis_run = distributed::luby_mis(g, 13);
    table.row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{g.max_degree()})
        .add(coloring_run.stats.rounds)
        .add(static_cast<double>(coloring_run.stats.rounds) / std::log2(n), 2)
        .add(coloring_run.stats.messages)
        .add(std::uint64_t{coloring_run.coloring.max_color()})
        .add(coloring_run.coloring.degree_bounded(g))
        .add(mis_run.stats.rounds);
  }
  table.print(std::cout);
  std::cout << "RESULT: rounds/log2(n) stays ~constant — the O(log n) shape; every run is\n"
               "proper and degree-bounded, which is all the paper needs from BEPS.\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_round_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
