// Micro-benchmarks for the library's hot paths (google-benchmark).
//
// Not tied to a paper claim — these exist so performance regressions in the
// substrate are caught: codeword encode/decode, slot matching (the §4/§5
// inner loop), scheduler stepping throughput, graph generation and the
// satisfaction/matching kernels.

#include <benchmark/benchmark.h>

#include "fhg/coding/elias.hpp"
#include "fhg/coding/prefix.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/mis/greedy.hpp"

namespace {

using namespace fhg;

// ------------------------------------------------------------- coding ------

void BM_EliasOmegaEncode(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    const coding::BitString w = coding::elias_omega(x);
    benchmark::DoNotOptimize(w.size());
    x = x % 100'000 + 1;
  }
}
BENCHMARK(BM_EliasOmegaEncode);

void BM_EliasOmegaLength(benchmark::State& state) {
  std::uint64_t x = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coding::elias_omega_length(x));
    x = x % 1'000'000 + 1;
  }
}
BENCHMARK(BM_EliasOmegaLength);

void BM_SlotMatch(benchmark::State& state) {
  const coding::ScheduleSlot slot = coding::slot_of(coding::elias_omega(17));
  std::uint64_t t = 1;
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += slot.matches(t++) ? 1 : 0;
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_SlotMatch);

void BM_DecodeHoliday(benchmark::State& state) {
  std::uint64_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coding::decode_holiday(coding::CodeFamily::kEliasOmega, t++));
  }
}
BENCHMARK(BM_DecodeHoliday);

// ------------------------------------------------------------ graphs -------

void BM_GnpGenerate(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), seed++);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GnpGenerate)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_GreedyColoring(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 3);
  for (auto _ : state) {
    const auto coloring = coloring::greedy_color(g, coloring::Order::kLargestFirst);
    benchmark::DoNotOptimize(coloring.max_color());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GreedyColoring)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_DsaturColoring(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 3);
  for (auto _ : state) {
    const auto coloring = coloring::dsatur_color(g);
    benchmark::DoNotOptimize(coloring.max_color());
  }
}
BENCHMARK(BM_DsaturColoring)->Arg(10'000)->Arg(50'000)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------- schedulers ------

void BM_PrefixSchedulerStep(benchmark::State& state) {
  const graph::Graph g = graph::barabasi_albert(
      static_cast<graph::NodeId>(state.range(0)), 3, 7);
  core::PrefixCodeScheduler scheduler(g, coloring::dsatur_color(g));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.next_holiday().size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_PrefixSchedulerStep)->Arg(1'000)->Arg(10'000);

void BM_PhasedGreedyStep(benchmark::State& state) {
  const graph::Graph g = graph::barabasi_albert(
      static_cast<graph::NodeId>(state.range(0)), 3, 7);
  core::PhasedGreedyScheduler scheduler(
      g, coloring::greedy_color(g, coloring::Order::kLargestFirst));
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.next_holiday().size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_PhasedGreedyStep)->Arg(1'000)->Arg(10'000);

void BM_FcfgStep(benchmark::State& state) {
  const graph::Graph g = graph::barabasi_albert(
      static_cast<graph::NodeId>(state.range(0)), 3, 7);
  core::FirstComeFirstGrabScheduler scheduler(g, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.next_holiday().size());
  }
  state.SetItemsProcessed(state.iterations() * g.num_nodes());
}
BENCHMARK(BM_FcfgStep)->Arg(1'000)->Arg(10'000);

void BM_DegreeBoundAssignment(benchmark::State& state) {
  const graph::Graph g = graph::gnp(static_cast<graph::NodeId>(state.range(0)),
                                    8.0 / static_cast<double>(state.range(0)), 9);
  for (auto _ : state) {
    const auto slots = core::assign_degree_bound_slots(g, core::degree_bound_order(g));
    benchmark::DoNotOptimize(slots.data());
  }
}
BENCHMARK(BM_DegreeBoundAssignment)->Arg(10'000)->Arg(100'000)->Unit(benchmark::kMillisecond);

void BM_GreedyMis(benchmark::State& state) {
  const graph::Graph g = graph::gnp(static_cast<graph::NodeId>(state.range(0)),
                                    8.0 / static_cast<double>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mis::greedy_mis(g).size());
  }
}
BENCHMARK(BM_GreedyMis)->Arg(10'000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
