// E1 — Theorem 3.1: the Phased Greedy Coloring algorithm guarantees that a
// parent of degree d is happy at least once in every d+1 consecutive
// holidays, with O(1) communication rounds per holiday.
//
// Regenerates, per graph family and per degree: the worst observed gap vs
// the d+1 bound, for two initial colorings (sequential greedy and the
// distributed Johansson run) — the bound must hold for both.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/distributed/johansson.hpp"
#include "fhg/distributed/phased_greedy.hpp"

int main() {
  using namespace fhg;
  bench::banner("E1", "Theorem 3.1, Section 3",
                "Phased greedy: per-degree worst gap vs the d+1 guarantee");

  constexpr std::uint64_t kHorizon = 20'000;
  for (const auto& [init_name, use_johansson] :
       std::vector<std::pair<std::string, bool>>{{"greedy-largest-first", false},
                                                 {"johansson-distributed", true}}) {
    analysis::Table table(
        {"family", "degree", "nodes", "worst gap", "mean gap bound d+1", "gap <= d+1"});
    bool all_ok = true;
    for (const auto& workload : bench::standard_workloads(2000, 1)) {
      const graph::Graph& g = workload.graph;
      const coloring::Coloring initial =
          use_johansson ? distributed::johansson_color(g, 7).coloring
                        : coloring::greedy_color(g, coloring::Order::kLargestFirst);
      core::PhasedGreedyScheduler scheduler(g, initial);
      const auto report = core::run_schedule(scheduler, {.horizon = kHorizon});
      all_ok = all_ok && report.independence_ok && report.bounds_respected;

      // Group worst gap by degree bucket.
      std::vector<std::uint64_t> buckets;
      std::vector<double> gaps;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        buckets.push_back(bench::degree_bucket(g.degree(v)));
        gaps.push_back(static_cast<double>(report.max_gap_with_tail[v]));
      }
      for (const auto& row : analysis::group_stats(buckets, gaps)) {
        // Within a bucket the binding bound is the bucket's max degree+1;
        // report the bucket floor+1 as the *mean* reference and check each
        // node individually through bounds_respected.
        table.row()
            .add(workload.name)
            .add(row.key)
            .add(static_cast<std::uint64_t>(row.count))
            .add(static_cast<std::uint64_t>(row.max))
            .add(row.key + 1)
            .add(report.bounds_respected);
      }
    }
    std::cout << "\nInitial coloring: " << init_name << "\n";
    table.print(std::cout);
    std::cout << (all_ok ? "RESULT: PASS — every node respected gap <= deg+1\n"
                         : "RESULT: FAIL — bound violated\n");
  }

  // Communication cost: O(1) rounds per holiday, messages only around happy
  // nodes (the §3 "lightweight per holiday" claim).
  const graph::Graph g = graph::gnp(500, 0.02, 3);
  const auto run = distributed::run_phased_greedy(
      g, coloring::greedy_color(g, coloring::Order::kLargestFirst), 200);
  analysis::Table comm({"holidays", "rounds", "rounds/holiday", "messages/holiday"});
  comm.row()
      .add(std::uint64_t{200})
      .add(run.stats.rounds)
      .add(static_cast<double>(run.stats.rounds) / 200.0, 2)
      .add(static_cast<double>(run.stats.messages) / 200.0, 1);
  comm.print(std::cout);
  return 0;
}
