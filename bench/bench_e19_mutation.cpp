// E19 — live topology mutations: in-place recolor vs erase-and-recreate
// (google-benchmark; emits machine-readable JSON for the CI perf gate).
//
// The §6 dynamic setting served two ways over identical fhg::workload
// fleets of dynamic-prefix-code tenants, with identical seeded
// marry/divorce/add-node command streams (`ScenarioGenerator::
// mutation_commands`):
//
//   inplace  — `Engine::apply_mutations`: the tenant recolors the affected
//              node(s) per §6, appends to its mutation log, and republishes
//              its period table at the next version.  Gap history, holiday
//              counter, and tenant identity all survive;
//   recreate — the pre-PR-3 fallback (what `churn_round` still does): apply
//              the same commands to an external graph mirror, then erase the
//              tenant and create a fresh one over the mutated topology —
//              paying a full greedy recoloring, scheduler construction,
//              table interning, and registry churn, and losing all history.
//
// The acceptance configuration (4k-tenant power-law fleet) requires
// `inplace` to beat `recreate` by >= 1.5x (tools/check_bench.py enforces
// this from the JSON output; the checked-in baseline gates regressions).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/graph/dynamic_graph.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::uint64_t kStepDepth = 64;  ///< holidays each fleet is stepped before mutating

/// One fully built all-dynamic fleet plus, for the recreate strategy, a
/// per-slot mutable mirror of each tenant's live topology.
struct Fleet {
  explicit Fleet(const workload::ScenarioSpec& spec) : generator(spec) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    (void)engine->step_all(kStepDepth);
    mirrors.reserve(spec.fleet);
    recipe_nodes.reserve(spec.fleet);
    for (std::size_t i = 0; i < spec.fleet; ++i) {
      const graph::Graph& recipe = engine->find(generator.tenant_name(i))->graph();
      mirrors.emplace_back(recipe);
      recipe_nodes.push_back(recipe.num_nodes());
    }
  }

  workload::ScenarioGenerator generator;
  std::unique_ptr<engine::Engine> engine;
  std::vector<graph::DynamicGraph> mirrors;  ///< recreate strategy only
  /// Per-slot node count captured *before* any mutation: both strategies
  /// feed this to mutation_commands every round, so the command streams stay
  /// identical even after add_node grows a (recreated) tenant's recipe.
  std::vector<graph::NodeId> recipe_nodes;
  std::uint64_t round = 0;                   ///< advances across iterations
};

/// Separate cache per (strategy, scenario): the two strategies must not
/// share an engine, since each evolves its fleet's topology independently.
Fleet& fleet_for(const std::string& strategy, const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[strategy + "|" + scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e19: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec);
  }
  return *slot;
}

void BM_MutateInPlace(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for("inplace", scenario);
  const std::size_t fleet_size = fleet.generator.spec().fleet;
  std::uint64_t commands = 0;
  for (auto _ : state) {
    for (std::size_t slot = 0; slot < fleet_size; ++slot) {
      const std::string name = fleet.generator.tenant_name(slot);
      const auto mix =
          fleet.generator.mutation_commands(slot, fleet.round, fleet.recipe_nodes[slot]);
      (void)fleet.engine->apply_mutations(name, mix);
      commands += mix.size();
    }
    ++fleet.round;
  }
  benchmark::DoNotOptimize(commands);
  state.SetItemsProcessed(static_cast<std::int64_t>(commands));
}

void BM_MutateRecreate(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for("recreate", scenario);
  const std::size_t fleet_size = fleet.generator.spec().fleet;
  std::uint64_t commands = 0;
  for (auto _ : state) {
    for (std::size_t slot = 0; slot < fleet_size; ++slot) {
      const std::string name = fleet.generator.tenant_name(slot);
      graph::DynamicGraph& mirror = fleet.mirrors[slot];
      const auto mix =
          fleet.generator.mutation_commands(slot, fleet.round, fleet.recipe_nodes[slot]);
      for (const dynamic::MutationCommand& cmd : mix) {
        switch (cmd.op) {
          case dynamic::MutationOp::kInsertEdge:
            (void)mirror.insert_edge(cmd.u, cmd.v);
            break;
          case dynamic::MutationOp::kEraseEdge:
            (void)mirror.erase_edge(cmd.u, cmd.v);
            break;
          case dynamic::MutationOp::kAddNode:
            (void)mirror.add_node();
            break;
        }
      }
      commands += mix.size();
      engine::InstanceSpec spec;
      spec.kind = engine::SchedulerKind::kDynamicPrefixCode;
      (void)fleet.engine->erase_instance(name);
      (void)fleet.engine->create_instance(name, mirror.snapshot(), std::move(spec));
    }
    ++fleet.round;
  }
  benchmark::DoNotOptimize(commands);
  state.SetItemsProcessed(static_cast<std::int64_t>(commands));
}

/// All-dynamic fleets so every slot exercises the mutation path.
const char* kSweep[] = {
    "power-law:fleet=1000,nodes=48,aperiodic=0,dynamic=1,horizon=1024",
    "ring:fleet=1000,nodes=48,aperiodic=0,dynamic=1,horizon=1024",
};

/// Acceptance configuration: a 4k-tenant power-law fleet.
const char* kAcceptance = "power-law:fleet=4000,nodes=48,aperiodic=0,dynamic=1,horizon=1024";

void register_all() {
  for (const char* scenario : kSweep) {
    const auto spec = workload::parse_scenario(scenario);
    const std::string family = workload::graph_family_name(spec->family);
    benchmark::RegisterBenchmark(("inplace/" + family).c_str(), [scenario](benchmark::State& s) {
      BM_MutateInPlace(s, scenario);
    });
    benchmark::RegisterBenchmark(("recreate/" + family).c_str(), [scenario](benchmark::State& s) {
      BM_MutateRecreate(s, scenario);
    });
  }
  benchmark::RegisterBenchmark("inplace/acceptance-4k", [](benchmark::State& s) {
    BM_MutateInPlace(s, kAcceptance);
  });
  benchmark::RegisterBenchmark("recreate/acceptance-4k", [](benchmark::State& s) {
    BM_MutateRecreate(s, kAcceptance);
  });
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
