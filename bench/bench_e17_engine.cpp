// E17 — the serving-layer payoff of perfect periodicity (§4/§5 made
// operational): a multi-tenant engine answering membership queries in O(1)
// from materialized (period, phase) pairs, versus replaying the schedule.
//
// Measures, on a fleet of 10k instances:
//   (a) batched stepping throughput (holidays/sec) of the work-stealing
//       executor vs. naive sequential stepping;
//   (b) queries/sec of the O(1) period-table path at holiday depth 1k, vs.
//       replay-based membership (replay the schedule to holiday t, check the
//       happy set) — the acceptance target is >= 50x;
//   (c) snapshot size + round-trip: snapshot -> restore -> snapshot must be
//       byte-identical.

#include <chrono>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/parallel/rng.hpp"
#include "fhg/parallel/thread_pool.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  using namespace fhg;
  bench::banner("E17", "serving layer (engine)",
                "Multi-tenant engine: O(1) queries, batched stepping, compact snapshots");

  constexpr std::size_t kInstances = 10'000;
  constexpr std::uint64_t kHolidayDepth = 1'000;
  constexpr graph::NodeId kNodes = 32;

  // A small pool of distinct topologies, reused across the fleet (each
  // instance still owns its own graph + scheduler state).
  std::vector<graph::Graph> topologies;
  for (std::uint64_t s = 0; s < 16; ++s) {
    topologies.push_back(graph::gnp(kNodes, 0.15, 1000 + s));
  }

  engine::Engine eng({.shards = 64, .threads = 0});
  const auto build_start = Clock::now();
  for (std::size_t i = 0; i < kInstances; ++i) {
    engine::InstanceSpec spec;
    spec.kind = engine::SchedulerKind::kDegreeBound;
    (void)eng.create_instance("tenant-" + std::to_string(i), topologies[i % topologies.size()],
                              std::move(spec));
  }
  const double build_s = seconds_since(build_start);

  // (a) Batched stepping: the work-stealing executor vs. one thread, one
  // instance at a time.
  constexpr std::uint64_t kStepBatch = 64;
  const auto parallel_start = Clock::now();
  const auto stats = eng.step_all(kStepBatch);
  const double parallel_s = seconds_since(parallel_start);

  engine::Engine seq({.shards = 1, .threads = 1});
  for (std::size_t i = 0; i < kInstances; ++i) {
    engine::InstanceSpec spec;
    spec.kind = engine::SchedulerKind::kDegreeBound;
    (void)seq.create_instance("tenant-" + std::to_string(i), topologies[i % topologies.size()],
                              std::move(spec));
  }
  const auto seq_start = Clock::now();
  (void)seq.step_all(kStepBatch);
  const double seq_s = seconds_since(seq_start);

  analysis::print_section(std::cout, "E17a: batched stepping, " + std::to_string(kInstances) +
                                         " instances x " + std::to_string(kStepBatch) +
                                         " holidays");
  analysis::Table step_table({"mode", "holidays", "seconds", "holidays/sec"});
  step_table.row()
      .add("work-stealing pool")
      .add(stats.holidays)
      .add(parallel_s, 3)
      .add(static_cast<double>(stats.holidays) / parallel_s, 0);
  step_table.row()
      .add("sequential")
      .add(stats.holidays)
      .add(seq_s, 3)
      .add(static_cast<double>(stats.holidays) / seq_s, 0);
  step_table.print(std::cout);
  std::cout << "build: " << kInstances << " instances in " << build_s << "s; step speedup "
            << seq_s / parallel_s << "x on " << parallel::ThreadPool::default_concurrency()
            << " hardware thread(s)\n";

  // (b) O(1) query path vs replay-based membership at depth kHolidayDepth.
  // Period-table path: a large batch of random probes across the fleet.
  parallel::Rng rng(2024);
  constexpr std::size_t kFastQueries = 2'000'000;
  std::vector<std::shared_ptr<engine::Instance>> handles;
  handles.reserve(kInstances);
  for (std::size_t i = 0; i < kInstances; ++i) {
    handles.push_back(eng.find("tenant-" + std::to_string(i)));
  }
  std::uint64_t happy_hits = 0;
  const auto fast_start = Clock::now();
  for (std::size_t q = 0; q < kFastQueries; ++q) {
    const auto& instance = handles[rng.uniform_below(kInstances)];
    const auto v = static_cast<graph::NodeId>(rng.uniform_below(kNodes));
    const std::uint64_t t = 1 + rng.uniform_below(kHolidayDepth);
    happy_hits += instance->is_happy(v, t) ? 1 : 0;
  }
  const double fast_s = seconds_since(fast_start);
  const double fast_qps = static_cast<double>(kFastQueries) / fast_s;

  // Replay baseline: answering the same membership question by driving a
  // fresh scheduler to holiday t.  Far too slow to run 2M times — measure a
  // sample and report the per-query rate.
  constexpr std::size_t kReplayQueries = 200;
  std::uint64_t replay_hits = 0;
  const auto replay_start = Clock::now();
  for (std::size_t q = 0; q < kReplayQueries; ++q) {
    const std::size_t i = rng.uniform_below(kInstances);
    const auto v = static_cast<graph::NodeId>(rng.uniform_below(kNodes));
    const std::uint64_t t = 1 + rng.uniform_below(kHolidayDepth);
    const auto scheduler =
        engine::make_scheduler(topologies[i % topologies.size()], handles[i]->spec());
    std::vector<graph::NodeId> happy;
    for (std::uint64_t step = 0; step < t; ++step) {
      happy = scheduler->next_holiday();
    }
    replay_hits += std::binary_search(happy.begin(), happy.end(), v) ? 1 : 0;
  }
  const double replay_s = seconds_since(replay_start);
  const double replay_qps = static_cast<double>(kReplayQueries) / replay_s;
  const double speedup = fast_qps / replay_qps;

  analysis::print_section(std::cout, "E17b: membership queries at holiday depth " +
                                         std::to_string(kHolidayDepth));
  analysis::Table query_table({"path", "queries", "seconds", "queries/sec"});
  query_table.row().add("period table (O(1))").add(kFastQueries).add(fast_s, 3).add(fast_qps, 0);
  query_table.row()
      .add("replay membership")
      .add(kReplayQueries)
      .add(replay_s, 3)
      .add(replay_qps, 0);
  query_table.print(std::cout);
  const bool query_ok = speedup >= 50.0;
  std::cout << "speedup: " << speedup << "x (acceptance: >= 50x) — hit rates "
            << static_cast<double>(happy_hits) / kFastQueries << " vs "
            << static_cast<double>(replay_hits) / kReplayQueries << "\n";

  // (c) Snapshot round trip on the stepped fleet.
  const auto snap_start = Clock::now();
  const auto bytes = eng.snapshot();
  const double snap_s = seconds_since(snap_start);
  engine::Engine restored({.shards = 64, .threads = 0});
  const auto restore_start = Clock::now();
  restored.load_snapshot(bytes);
  const double restore_s = seconds_since(restore_start);
  const auto bytes2 = restored.snapshot();
  const bool identical = bytes == bytes2;

  analysis::print_section(std::cout, "E17c: snapshot round trip");
  analysis::Table snap_table(
      {"instances", "bytes", "bytes/instance", "snapshot s", "restore s", "byte-identical"});
  snap_table.row()
      .add(static_cast<std::uint64_t>(kInstances))
      .add(static_cast<std::uint64_t>(bytes.size()))
      .add(static_cast<double>(bytes.size()) / kInstances, 1)
      .add(snap_s, 3)
      .add(restore_s, 3)
      .add(identical);
  snap_table.print(std::cout);

  const bool ok = query_ok && identical;
  std::cout << (ok ? "RESULT: PASS — O(1) path >= 50x replay, snapshot byte-identical\n"
                   : "RESULT: FAIL\n");
  return ok ? 0 : 1;
}
