// E14 — ablations on the design choices DESIGN.md calls out:
//   (a) the periodicity price (the paper's §6 separation conjecture):
//       periodic degree-bound period vs the aperiodic phased-greedy *actual*
//       worst gap, per degree — the measured ratio lives in (1, 2];
//   (b) prefix-code choice: mean realized period per scheduler when colors
//       come from DSATUR vs greedy (coloring quality feeds the code);
//   (c) parallel speedup of the Monte-Carlo driver (the hpc angle): FCFG
//       frequency estimation across thread counts.

#include <chrono>
#include <iostream>

#include "bench_common.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/parallel/parallel_for.hpp"

int main() {
  using namespace fhg;
  bench::banner("E14", "ablations (§6 conjecture; code/coloring choice; parallel driver)",
                "Periodicity price, code x coloring matrix, Monte-Carlo speedup");

  // (a) periodicity price per degree.
  {
    const graph::Graph g = graph::barabasi_albert(1500, 3, 77);
    core::DegreeBoundScheduler periodic(g);
    core::PhasedGreedyScheduler adaptive(
        g, coloring::greedy_color(g, coloring::Order::kLargestFirst));
    const auto adaptive_report = core::run_schedule(adaptive, {.horizon = 20'000});

    std::vector<std::uint64_t> buckets;
    std::vector<double> guarantee_ratio;  // period / (d+1): provably <= 2
    std::vector<double> practice_ratio;   // period / observed adaptive gap
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      buckets.push_back(bench::degree_bucket(g.degree(v)));
      const double period = static_cast<double>(periodic.period_of(v).value());
      guarantee_ratio.push_back(period / (g.degree(v) + 1.0));
      practice_ratio.push_back(period /
                               static_cast<double>(adaptive_report.max_gap_with_tail[v]));
    }
    analysis::Table price({"degree", "nodes", "period/(d+1) max", "<= 2 (conjectured price)",
                           "period/observed-gap mean", "max"});
    const auto g_rows = analysis::group_stats(buckets, guarantee_ratio);
    const auto p_rows = analysis::group_stats(buckets, practice_ratio);
    for (std::size_t i = 0; i < g_rows.size(); ++i) {
      price.row()
          .add(g_rows[i].key)
          .add(static_cast<std::uint64_t>(g_rows[i].count))
          .add(g_rows[i].max, 2)
          .add(g_rows[i].max <= 2.0)
          .add(p_rows[i].mean, 2)
          .add(p_rows[i].max, 2);
    }
    std::cout << "(a) Periodicity price: periodic 2^ceil(log(d+1)) vs the d+1 guarantee and\n"
                 "vs the gaps phased greedy actually realizes\n";
    price.print(std::cout);
    std::cout << "Guarantee-side price stays in (1, 2] — the factor the §6 conjecture says is\n"
                 "unavoidable.  Against *observed* adaptive gaps the price is larger because\n"
                 "phased greedy usually beats its own d+1 bound on heavy-tailed graphs.\n";
  }

  // (b) code family x coloring quality matrix (mean period over nodes).
  {
    const graph::Graph g = graph::gnp(1200, 0.005, 81);
    analysis::Table matrix({"coloring", "colors", "gamma mean period", "delta mean period",
                            "omega mean period", "degree-bound mean period"});
    for (const auto& [label, colors] : std::vector<std::pair<std::string, coloring::Coloring>>{
             {"greedy largest-first",
              coloring::greedy_color(g, coloring::Order::kLargestFirst)},
             {"DSATUR", coloring::dsatur_color(g)},
             {"smallest-last", coloring::greedy_color(g, coloring::Order::kSmallestLast)}}) {
      std::vector<double> mean_period(3, 0.0);
      const coding::CodeFamily families[] = {coding::CodeFamily::kEliasGamma,
                                             coding::CodeFamily::kEliasDelta,
                                             coding::CodeFamily::kEliasOmega};
      for (std::size_t f = 0; f < 3; ++f) {
        core::PrefixCodeScheduler scheduler(g, colors, families[f]);
        for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
          mean_period[f] += static_cast<double>(scheduler.period_of(v).value());
        }
        mean_period[f] /= g.num_nodes();
      }
      core::DegreeBoundScheduler db(g);
      double db_mean = 0.0;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        db_mean += static_cast<double>(db.period_of(v).value());
      }
      db_mean /= g.num_nodes();
      matrix.row()
          .add(label)
          .add(std::uint64_t{colors.max_color()})
          .add(mean_period[0], 1)
          .add(mean_period[1], 1)
          .add(mean_period[2], 1)
          .add(db_mean, 1);
    }
    std::cout << "\n(b) Code x coloring ablation (mean realized period; lower is better):\n";
    matrix.print(std::cout);
    std::cout << "Gamma wins at the small colors good colorings produce — omega's advantage\n"
                 "is asymptotic (cf. E4 crossover); better colorings shrink every code's period.\n";
  }

  // (c) parallel Monte-Carlo speedup.
  {
    const graph::Graph g = graph::gnp(2000, 0.004, 83);
    core::FirstComeFirstGrabScheduler scheduler(g, 17);
    constexpr std::uint64_t kHorizon = 40'000;
    constexpr std::size_t kGrain = 2048;
    analysis::Table speedup({"threads", "wall ms", "speedup", "checksum"});
    double base_ms = 0.0;
    for (const std::size_t threads : {1UL, 2UL, 4UL, 8UL}) {
      parallel::ThreadPool pool(threads);
      std::vector<std::vector<std::uint64_t>> partial(
          kHorizon / kGrain + 1, std::vector<std::uint64_t>(g.num_nodes(), 0));
      const auto start = std::chrono::steady_clock::now();
      parallel::parallel_for(
          pool, 1, kHorizon + 1,
          [&](std::size_t t) {
            std::vector<std::uint64_t>& mine = partial[(t - 1) / kGrain];
            for (const graph::NodeId v : scheduler.happy_set_at(t)) {
              ++mine[v];
            }
          },
          kGrain);
      const auto stop = std::chrono::steady_clock::now();
      std::uint64_t checksum = 0;
      for (const auto& p : partial) {
        for (const std::uint64_t c : p) {
          checksum += c;
        }
      }
      const double ms =
          std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(stop - start)
              .count();
      if (threads == 1) {
        base_ms = ms;
      }
      speedup.row().add(std::uint64_t{threads}).add(ms, 1).add(base_ms / ms, 2).add(checksum);
    }
    std::cout << "\n(c) Parallel Monte-Carlo driver (identical checksums = determinism):\n";
    speedup.print(std::cout);
  }
  return 0;
}
