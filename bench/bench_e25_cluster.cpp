// E25 — cluster scale-out: aggregate snapshot-read QPS through the
// `fhg::cluster` router over three single-shard backends vs the same router
// over one (google-benchmark; emits machine-readable JSON for the CI perf
// gate).
//
// The workload is `SnapshotInstance` reads round-robined over a pre-built
// fleet: each request makes the owning backend serialize a whole instance
// (graph + schedule + coloring), which is exactly the work profile where a
// router in front of N processes should multiply capacity — backend CPU
// dominates, the router only frames and forwards.  Both series run the
// *same* client count through the *same* router code path, so the measured
// ratio isolates backend capacity:
//
//   single-1/snapshot — router → 1 backend (service-shards=1).  The
//                       backend's one service FIFO is the bottleneck; this
//                       is one process's snapshot-serving capacity.
//   router-3/snapshot — router → 3 such backends.  The consistent-hash ring
//                       spreads the fleet, so the three FIFOs drain in
//                       parallel.
//
// router-3 additionally publishes per-backend `backend_qps_*` user counters
// (from the router's own fhg_cluster_requests_total{backend=...} registry).
// The CI gate sums them with check_bench.py --sum-counters into an
// `aggregate-3` synthetic series and requires it >= 1.7x the single-backend
// series — the scale-out acceptance from the cluster PR.  On a single-core
// runner the ratio degrades to ~1x (three FIFOs time-slicing one core);
// the gate belongs on multi-core CI, which is where it runs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/cluster/router.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/obs/registry.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::size_t kFleet = 8;       ///< instances (spread over the ring)
constexpr std::size_t kNodes = 1024;    ///< per-instance graph size
constexpr std::size_t kClients = 4;     ///< concurrent client connections
constexpr std::size_t kPerClient = 64;  ///< snapshot reads per client per iteration

workload::ScenarioSpec fleet_spec() {
  workload::ScenarioSpec spec;
  spec.family = workload::GraphFamily::kPowerLaw;
  spec.fleet = kFleet;
  spec.nodes = kNodes;
  spec.seed = 7;
  spec.horizon = 256;
  spec.aperiodic = 0.2;
  return spec;
}

/// One backend process stand-in: engine + single-shard service + TCP server.
/// One service shard per backend is the honest per-process capacity model —
/// scale-out must come from *more backends*, not more shards.
struct Backend {
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<service::Service> service;
  std::unique_ptr<api::SocketServer> server;

  explicit Backend(const std::string& backend_id) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 8, .threads = 0});
    workload::ScenarioGenerator(fleet_spec()).populate(*engine);
    service = std::make_unique<service::Service>(
        *engine, service::ServiceOptions{.shards = 1, .backend_id = backend_id});
    server = std::make_unique<api::SocketServer>(*service, api::SocketServerOptions{});
  }
};

/// A router over `n` freshly built backends, fronted by its own TCP server
/// (clients pay the same two hops in both series).
struct ClusterUnderTest {
  std::vector<std::unique_ptr<Backend>> backends;
  std::unique_ptr<cluster::Router> router;
  std::unique_ptr<api::SocketServer> front;

  explicit ClusterUnderTest(std::size_t n) {
    cluster::RouterOptions options;
    for (std::size_t i = 0; i < n; ++i) {
      const std::string name = std::string("b") + std::to_string(i);
      backends.push_back(std::make_unique<Backend>(name));
      options.backends.push_back(
          cluster::BackendConfig{name, "127.0.0.1", backends.back()->server->port()});
    }
    options.workers = 2 * n;
    options.probe_interval = std::chrono::milliseconds(0);  // no prober noise
    router = std::make_unique<cluster::Router>(std::move(options));
    front = std::make_unique<api::SocketServer>(*router, api::SocketServerOptions{});
  }

  ~ClusterUnderTest() {
    front->stop();
    router->stop();
    for (auto& backend : backends) {
      backend->server->stop();
    }
  }

  [[nodiscard]] std::uint64_t requests_on(const std::string& backend) const {
    const std::string name = "fhg_cluster_requests_total{backend=\"" + backend + "\"}";
    for (const obs::MetricSample& sample : router->metrics().snapshot()) {
      if (sample.name == name) {
        return static_cast<std::uint64_t>(sample.value);
      }
    }
    return 0;
  }
};

/// `kClients` threads, each snapshot-reading the fleet round-robin through
/// its own connection to the router.  Returns total requests served.
std::uint64_t storm(benchmark::State& state, const ClusterUnderTest& cluster) {
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> failures(kClients, 0);
  clients.reserve(kClients);
  const workload::ScenarioGenerator generator(fleet_spec());
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      api::Client client(std::make_unique<api::SocketTransport>(cluster.front->host(),
                                                                cluster.front->port()));
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const auto snapshot =
            client.snapshot_instance(generator.tenant_name((c + i) % kFleet));
        if (!snapshot.ok() || snapshot.value.empty()) {
          ++failures[c];
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (const std::uint64_t failed : failures) {
    if (failed != 0) {
      state.SkipWithError("snapshot read failed on a healthy cluster");
      break;
    }
  }
  return kClients * kPerClient;
}

void BM_Cluster(benchmark::State& state, std::size_t backends) {
  const ClusterUnderTest cluster(backends);
  std::vector<std::uint64_t> served_before(backends);
  for (std::size_t b = 0; b < backends; ++b) {
    served_before[b] = cluster.requests_on(std::string("b") + std::to_string(b));
  }
  std::uint64_t total = 0;
  const auto start = std::chrono::steady_clock::now();
  for (auto _ : state) {
    total += storm(state, cluster);
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  state.SetItemsProcessed(static_cast<std::int64_t>(total));
  if (backends > 1 && elapsed_s > 0.0) {
    // Per-backend QPS from the router's own registry: the CI gate sums
    // these (check_bench.py --sum-counters) into the aggregate series.
    for (std::size_t b = 0; b < backends; ++b) {
      const std::string name = std::string("b") + std::to_string(b);
      const double served =
          static_cast<double>(cluster.requests_on(name) - served_before[b]);
      state.counters["backend_qps_" + name] = benchmark::Counter(served / elapsed_s);
    }
  }
}

void register_all() {
  benchmark::RegisterBenchmark("single-1/snapshot", [](benchmark::State& s) {
    BM_Cluster(s, 1);
  })->UseRealTime();
  benchmark::RegisterBenchmark("router-3/snapshot", [](benchmark::State& s) {
    BM_Cluster(s, 3);
  })->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
