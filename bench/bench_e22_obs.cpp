// E22 — the observability tax: the engine's instrumented batch query path
// (`Engine::query_batch`, which counts batches and probes and records the
// wall-time histogram on every call) against the bare snapshot kernel it
// wraps (google-benchmark; emits machine-readable JSON for the CI perf
// gate).
//
// Both strategies run the identical probe batch against the identical
// published `QuerySnapshot`; the only variable is the telemetry:
//
//   plain-*        — `QuerySnapshot::query_batch` / `next_gathering_batch`
//                    on the held snapshot, with the same per-call output
//                    allocation the engine path performs: the kernel cost
//                    with zero instrumentation.
//   instrumented-* — `Engine::query_batch` / `next_gathering_batch`: the
//                    same allocation and kernel plus one steady_clock pair,
//                    two relaxed counter bumps and one lock-free histogram
//                    record per batch.
//
// The CI gate is the one non-standard check in the suite: besides the usual
// 2x regression bound against bench/baselines/bench_e22.json, it asserts
//   check_bench.py --min-speedup instrumented-X plain-X 0.95
// i.e. instrumentation may cost at most 5% — telemetry that taxes the hot
// path more than that does not ride along silently.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fhg/engine/engine.hpp"
#include "fhg/engine/query_batch.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::size_t kProbesPerBatch = 8'192;

/// One fully built fleet, its published snapshot, and a resolved probe
/// batch — shared by both strategies so they run identical work.
struct Fleet {
  explicit Fleet(const workload::ScenarioSpec& spec) {
    const workload::ScenarioGenerator generator(spec);
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    snapshot = engine->query_snapshot();
    probes.reserve(kProbesPerBatch);
    for (std::size_t i = 0; i < kProbesPerBatch; ++i) {
      const auto id = static_cast<std::uint32_t>(i % snapshot->size());
      const graph::NodeId nodes = snapshot->instance(id)->num_nodes();
      probes.push_back(engine::Probe{.instance = id,
                                     .node = static_cast<graph::NodeId>((i * 7) % nodes),
                                     .holiday = 1 + (i * 13) % 4096});
    }
  }

  std::unique_ptr<engine::Engine> engine;
  std::shared_ptr<const engine::QuerySnapshot> snapshot;
  std::vector<engine::Probe> probes;
};

Fleet& fleet_for(const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e22: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec);
  }
  return *slot;
}

void BM_PlainMembership(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  for (auto _ : state) {
    std::vector<std::uint8_t> out(fleet.probes.size());
    fleet.snapshot->query_batch(fleet.probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.probes.size()));
}

void BM_InstrumentedMembership(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  for (auto _ : state) {
    auto out = fleet.engine->query_batch(fleet.probes);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.probes.size()));
}

void BM_PlainNextGathering(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  for (auto _ : state) {
    std::vector<std::uint64_t> out(fleet.probes.size());
    fleet.snapshot->next_gathering_batch(fleet.probes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.probes.size()));
}

void BM_InstrumentedNextGathering(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  for (auto _ : state) {
    auto out = fleet.engine->next_gathering_batch(fleet.probes);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.probes.size()));
}

/// Acceptance configuration: the same 2k periodic fleet E21 serves, queried
/// in 8k-probe batches — the realistic regime, gated against the baseline
/// with the standard 2x regression bound (its working set is memory-bound,
/// so run-to-run noise on shared runners is several percent).
const char* kAcceptance = "power-law:fleet=2000,nodes=48,aperiodic=0,horizon=1024";

/// Overhead-gate configuration: a fleet small enough to stay cache-resident,
/// so the kernel runs deterministically and the instrumented/plain ratio
/// resolves the telemetry cost instead of memory-system noise.  This is the
/// pair the 0.95 `--min-speedup` gate runs against.
const char* kOverhead = "power-law:fleet=256,nodes=48,aperiodic=0,horizon=1024";

void register_all() {
  for (const auto& [tag, scenario] :
       {std::pair<const char*, const char*>{"acceptance-2k", kAcceptance},
        std::pair<const char*, const char*>{"overhead-256", kOverhead}}) {
    const std::string suffix = std::string("/") + tag;
    const std::string spec = scenario;
    benchmark::RegisterBenchmark(("plain-membership" + suffix).c_str(),
                                 [spec](benchmark::State& s) { BM_PlainMembership(s, spec); });
    benchmark::RegisterBenchmark(
        ("instrumented-membership" + suffix).c_str(),
        [spec](benchmark::State& s) { BM_InstrumentedMembership(s, spec); });
    benchmark::RegisterBenchmark(
        ("plain-next-gathering" + suffix).c_str(),
        [spec](benchmark::State& s) { BM_PlainNextGathering(s, spec); });
    benchmark::RegisterBenchmark(
        ("instrumented-next-gathering" + suffix).c_str(),
        [spec](benchmark::State& s) { BM_InstrumentedNextGathering(s, spec); });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
