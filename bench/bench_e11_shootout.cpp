// E11 — the headline cross-cutting comparison: every scheduler in the paper
// on one heavy-tailed society, per-degree worst waits side by side.
//
// Who wins where (the shape the paper predicts):
//   * trivial round-robin: wait |P| everywhere — worst for everyone;
//   * coloring round-robin: wait = #colors everywhere — great when χ is
//     small, but *global*: the single-child family waits like the clans;
//   * phased greedy: wait ≤ d+1 — best local guarantee, but aperiodic and
//     needs communication every holiday;
//   * omega code: periodic, wait 2^ρ(c) — local via c ≤ d+1, pays the
//     φ-factor for lightweight perfect periodicity;
//   * degree-bound: periodic, wait ≤ 2d — within ~2× of phased greedy while
//     keeping perfect periodicity (the paper's separation conjecture);
//   * first-come-first-grab: no guarantee at all.

#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "fhg/analysis/fairness.hpp"
#include "fhg/coloring/dsatur.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/core/prefix_code_scheduler.hpp"
#include "fhg/core/round_robin.hpp"

int main() {
  using namespace fhg;
  bench::banner("E11", "cross-cutting (Sections 1, 3, 4, 5)",
                "Shootout: per-degree worst wait for every scheduler on one society");

  const graph::Graph g = graph::barabasi_albert(2000, 2, 2024);
  const coloring::Coloring greedy = coloring::greedy_color(g, coloring::Order::kLargestFirst);
  const coloring::Coloring dsatur = coloring::dsatur_color(g);
  std::cout << "Workload: barabasi-albert n=2000 m=2; Delta=" << g.max_degree()
            << ", greedy colors=" << greedy.max_color() << ", DSATUR colors="
            << dsatur.max_color() << "\n";
  constexpr std::uint64_t kHorizon = 16'384;

  struct Entry {
    std::string label;
    std::unique_ptr<core::Scheduler> scheduler;
  };
  std::vector<Entry> entries;
  entries.push_back({"rr-trivial", std::make_unique<core::RoundRobinColorScheduler>(
                                       g, coloring::sequential_color(g))});
  entries.push_back({"rr-coloring", std::make_unique<core::RoundRobinColorScheduler>(g, greedy)});
  entries.push_back({"phased-greedy", std::make_unique<core::PhasedGreedyScheduler>(g, greedy)});
  entries.push_back({"omega", std::make_unique<core::PrefixCodeScheduler>(
                                  g, dsatur, coding::CodeFamily::kEliasOmega)});
  entries.push_back({"degree-bound", std::make_unique<core::DegreeBoundScheduler>(g)});
  entries.push_back({"fcfg", std::make_unique<core::FirstComeFirstGrabScheduler>(g, 31)});

  // Collect per-entry reports.
  std::vector<core::RunReport> reports;
  analysis::Table summary({"scheduler", "periodic", "audit", "fairness (Jain)",
                           "mean happy/holiday", "worst wait overall"});
  for (auto& entry : entries) {
    core::RunReport report = core::run_schedule(*entry.scheduler, {.horizon = kHorizon});
    std::uint64_t worst = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      worst = std::max(worst, report.max_gap_with_tail[v]);
    }
    summary.row()
        .add(entry.label)
        .add(entry.scheduler->perfectly_periodic())
        .add(report.independence_ok && report.bounds_respected)
        .add(analysis::jain_fairness(g, report.appearances, kHorizon), 3)
        .add(static_cast<double>(report.total_happy) / kHorizon, 1)
        .add(worst);
    reports.push_back(std::move(report));
  }
  summary.print(std::cout);

  // Per-degree worst waits, schedulers as columns.
  std::vector<std::string> headers{"degree", "nodes", "d+1 ref"};
  for (const auto& entry : entries) {
    headers.push_back(entry.label);
  }
  analysis::Table by_degree(headers);
  std::vector<std::uint64_t> buckets;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    buckets.push_back(bench::degree_bucket(g.degree(v)));
  }
  // Bucket keys in ascending order with counts.
  std::vector<double> ones(g.num_nodes(), 1.0);
  const auto key_rows = analysis::group_stats(buckets, ones);
  for (const auto& key_row : key_rows) {
    auto& row = by_degree.row();
    row.add(key_row.key).add(static_cast<std::uint64_t>(key_row.count)).add(key_row.key + 1);
    for (std::size_t e = 0; e < entries.size(); ++e) {
      std::uint64_t worst = 0;
      for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
        if (buckets[v] == key_row.key) {
          worst = std::max(worst, reports[e].max_gap_with_tail[v]);
        }
      }
      row.add(worst);
    }
  }
  std::cout << "\nPer-degree worst wait (columns = schedulers):\n";
  by_degree.print(std::cout);
  std::cout << "RESULT: local-bound schedulers scale the wait with the row (degree);\n"
               "global ones are flat columns; fcfg has outliers growing with the horizon.\n";
  return 0;
}
