// E12 — Appendix B: the Elias omega code itself.  Reproduces the paper's
// codeword table for 1..15 verbatim, the ρ(i) length recursion, the
// prefix-freeness sweep, and ρ's closed-form expansion.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/elias.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/coding/prefix.hpp"

int main() {
  using namespace fhg;
  bench::banner("E12", "Appendix B (Elias omega code)",
                "Codeword table 1..15 (must match the paper), rho recursion, prefix-freeness");

  // Paper's list, spaces removed (Appendix B example 3).
  const char* paper[] = {"0",       "100",     "110",     "101000",  "101010",
                         "101100",  "101110",  "1110000", "1110010", "1110100",
                         "1110110", "1111000", "1111010", "1111100", "1111110"};
  analysis::Table codewords({"i", "omega(i)", "paper", "match", "rho(i)", "slot residue",
                             "period 2^rho"});
  bool all_match = true;
  for (std::uint64_t i = 1; i <= 15; ++i) {
    const coding::BitString w = coding::elias_omega(i);
    const bool match = w.to_string() == paper[i - 1];
    all_match = all_match && match;
    const auto slot = coding::slot_of(w);
    codewords.row()
        .add(i)
        .add(w.to_string())
        .add(paper[i - 1])
        .add(match)
        .add(std::uint64_t{coding::elias_omega_length(i)})
        .add(slot.residue)
        .add(slot.period());
  }
  codewords.print(std::cout);
  std::cout << (all_match ? "RESULT: PASS — all 15 codewords identical to the paper's table\n"
                          : "RESULT: FAIL — codeword mismatch\n");

  // ρ(i) against its closed-form expansion 1 + ceil(log i) + ceil(log(ceil(log i)-1)) + …
  analysis::Table lengths({"i", "rho(i)", "1+log terms expansion", "gamma len", "delta len",
                           "unary len"});
  for (std::uint64_t i : {2ULL, 9ULL, 100ULL, 1'000ULL, 100'000ULL, 1'000'000'000ULL}) {
    // Expansion per Properties 1(2): iterate b = |B(x)|, x = b-1.
    std::uint32_t expansion = 1;
    std::uint64_t x = i;
    while (x > 1) {
      const auto b = coding::floor_log2(x) + 1;
      expansion += b;
      x = b - 1;
    }
    lengths.row()
        .add(i)
        .add(std::uint64_t{coding::elias_omega_length(i)})
        .add(std::uint64_t{expansion})
        .add(std::uint64_t{coding::elias_gamma_length(i)})
        .add(std::uint64_t{coding::elias_delta_length(i)})
        .add(i <= 1'000'000 ? std::to_string(coding::unary_length(i)) : std::string(">10^6"));
  }
  std::cout << "\nCodeword lengths (omega shortest asymptotically):\n";
  lengths.print(std::cout);

  // Prefix-freeness sweep with the trie checker.
  analysis::Table prefix({"colors checked", "prefix-free", "Kraft sum", "decode round-trips"});
  for (const std::uint64_t n : {1'000ULL, 100'000ULL, 1'000'000ULL}) {
    std::vector<coding::BitString> book;
    book.reserve(n);
    bool decode_ok = true;
    for (std::uint64_t c = 1; c <= n; ++c) {
      book.push_back(coding::elias_omega(c));
      // Round-trip every 97th codeword (full sweep at the smaller sizes).
      if (n <= 1'000 || c % 97 == 0) {
        std::size_t cursor = 0;
        const coding::BitString& w = book.back();
        const std::uint64_t decoded = coding::decode_elias_omega([&]() {
          const bool bit = cursor < w.size() && w.bit(cursor);
          ++cursor;
          return bit;
        });
        decode_ok = decode_ok && decoded == c && cursor == w.size();
      }
    }
    prefix.row()
        .add(n)
        .add(coding::is_prefix_free(book))
        .add(coding::kraft_sum(book), 6)
        .add(decode_ok);
  }
  std::cout << "\nPrefix-freeness and decodability at scale:\n";
  prefix.print(std::cout);
  return all_match ? 0 : 1;
}
