// E7 — the §1 "first come first grab" baseline: parents wake in random
// order and grab available children.  P[happy] = 1/(deg+1) per holiday, so
// the *expected* gap is deg+1 — but the worst-case gap is unbounded and
// grows ≈ (d+1)·ln(horizon) over long runs.
//
// Regenerates:
//   (a) happiness frequency vs the exact 1/(d+1) landmark (Monte-Carlo,
//       parallelized over the horizon with deterministic per-holiday RNG);
//   (b) worst-gap growth with horizon — no guarantee materializes;
//   (c) contrast row: the §3 phased greedy pins the worst gap at d+1.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/fcfg.hpp"
#include "fhg/core/phased_greedy.hpp"
#include "fhg/parallel/parallel_for.hpp"

int main() {
  using namespace fhg;
  bench::banner("E7", "Section 1 (first-come-first-grab)",
                "Chaotic baseline: frequency matches 1/(d+1); worst gap drifts with horizon");

  const graph::Graph g = graph::random_regular(400, 4, 71);  // all degrees = 4
  core::FirstComeFirstGrabScheduler scheduler(g, 13);

  // (a) Frequencies via parallel Monte-Carlo over the horizon (stateless
  // happy_set_at allows arbitrary-order evaluation).
  constexpr std::uint64_t kFreqHorizon = 100'000;
  constexpr std::size_t kGrain = 4096;
  parallel::ThreadPool pool;
  // One accumulator per parallel_for chunk: chunk k covers t in
  // [1 + k*grain, 1 + (k+1)*grain), so (t-1)/grain identifies it uniquely
  // and no two concurrent chunks ever share a row.
  std::vector<std::vector<std::uint64_t>> partial(kFreqHorizon / kGrain + 1,
                                                  std::vector<std::uint64_t>(g.num_nodes(), 0));
  parallel::parallel_for(
      pool, 1, kFreqHorizon + 1,
      [&](std::size_t t) {
        std::vector<std::uint64_t>& mine = partial[(t - 1) / kGrain];
        for (const graph::NodeId v : scheduler.happy_set_at(t)) {
          ++mine[v];
        }
      },
      kGrain);
  std::vector<std::uint64_t> appearances(g.num_nodes(), 0);
  for (const auto& p : partial) {
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      appearances[v] += p[v];
    }
  }
  std::vector<double> freqs;
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    freqs.push_back(static_cast<double>(appearances[v]) / kFreqHorizon);
  }
  const auto s = analysis::summarize(freqs);
  analysis::Table freq({"metric", "value", "landmark 1/(d+1)"});
  freq.row().add("mean frequency").add(s.mean, 4).add(0.2, 4);
  freq.row().add("min frequency").add(s.min, 4).add("-");
  freq.row().add("max frequency").add(s.max, 4).add("-");
  freq.print(std::cout);

  // (b) Worst-gap growth with horizon (sequential — gaps need order).
  analysis::Table growth({"horizon", "worst gap (fcfg)", "(d+1) ln(horizon) ref",
                          "worst gap (phased greedy)", "bound d+1"});
  core::PhasedGreedyScheduler phased(g,
                                     coloring::greedy_color(g, coloring::Order::kLargestFirst));
  for (const std::uint64_t horizon : {1'000ULL, 10'000ULL, 100'000ULL}) {
    const auto chaotic = core::run_schedule(scheduler, {.horizon = horizon});
    const auto ordered = core::run_schedule(phased, {.horizon = horizon});
    std::uint64_t worst_fcfg = 0;
    std::uint64_t worst_pg = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      worst_fcfg = std::max(worst_fcfg, chaotic.max_gap_with_tail[v]);
      worst_pg = std::max(worst_pg, ordered.max_gap_with_tail[v]);
    }
    growth.row()
        .add(horizon)
        .add(worst_fcfg)
        .add(5.0 * std::log(static_cast<double>(horizon)), 1)
        .add(worst_pg)
        .add(std::uint64_t{5});
  }
  growth.print(std::cout);
  std::cout << "RESULT: fcfg frequency sits on 1/(d+1) but its worst gap grows ~(d+1)ln(h);\n"
               "the deterministic §3 algorithm holds the same average with worst gap d+1.\n";
  return 0;
}
