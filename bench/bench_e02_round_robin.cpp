// E2 — the §1 baseline: scheduling by cycling through the color classes of a
// static coloring gives *every* node the same wait — the number of colors —
// no matter how small its family.  This is the "not pleasing" global bound
// that motivates the paper's local-bound algorithms.
//
// Regenerates: per-degree waits under (a) the trivial |P|-coloring of §4
// example 1 and (b) a Δ+1-style greedy coloring; contrast with the
// degree-local schedulers of E1/E4/E5.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/round_robin.hpp"

int main() {
  using namespace fhg;
  bench::banner("E2", "Section 1 + Section 4 example 1",
                "Round-robin color cycling: the wait is global (= #colors) for every degree");

  const graph::Graph g = graph::barabasi_albert(1000, 2, 5);

  analysis::Table table({"coloring", "colors", "degree", "nodes", "observed period",
                         "flat across degrees"});
  for (const auto& [label, coloring] : std::vector<std::pair<std::string, coloring::Coloring>>{
           {"trivial |P| colors", coloring::sequential_color(g)},
           {"greedy largest-first", coloring::greedy_color(g, coloring::Order::kLargestFirst)}}) {
    core::RoundRobinColorScheduler scheduler(g, coloring);
    const std::uint64_t colors = coloring.max_color();
    const auto report = core::run_schedule(scheduler, {.horizon = 4 * colors});

    std::vector<std::uint64_t> buckets;
    std::vector<double> periods;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      buckets.push_back(bench::degree_bucket(g.degree(v)));
      periods.push_back(static_cast<double>(report.detected_period[v].value_or(0)));
    }
    for (const auto& row : analysis::group_stats(buckets, periods)) {
      table.row()
          .add(label)
          .add(colors)
          .add(row.key)
          .add(static_cast<std::uint64_t>(row.count))
          .add(static_cast<std::uint64_t>(row.max))
          .add(row.max == static_cast<double>(colors) && row.mean == static_cast<double>(colors));
    }
  }
  table.print(std::cout);
  std::cout << "RESULT: every degree bucket shows period == #colors — the single-child\n"
               "parents wait exactly as long as the largest clans (the paper's complaint).\n";
  return 0;
}
