#pragma once

/// \file bench_common.hpp
/// Shared workloads and helpers for the experiment binaries (E1..E14).
/// Every experiment prints through fhg::analysis::Table so bench_output.txt
/// is uniform and diff-able.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "fhg/analysis/stats.hpp"
#include "fhg/analysis/table.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"

namespace fhg::bench {

/// A named conflict-graph workload.
struct Workload {
  std::string name;
  graph::Graph graph;
};

/// The standard graph families swept by the scheduling experiments.
/// `scale` ~ number of nodes for the sparse families.
inline std::vector<Workload> standard_workloads(graph::NodeId scale, std::uint64_t seed) {
  std::vector<Workload> w;
  w.push_back({"gnp-sparse", graph::gnp(scale, 8.0 / static_cast<double>(scale), seed)});
  w.push_back({"barabasi-albert", graph::barabasi_albert(scale, 3, seed + 1)});
  w.push_back({"grid", graph::grid2d(static_cast<graph::NodeId>(std::max(2.0, std::sqrt(scale))),
                                     static_cast<graph::NodeId>(std::max(2.0, std::sqrt(scale))))});
  w.push_back({"clique", graph::clique(std::min<graph::NodeId>(scale, 24))});
  w.push_back({"star", graph::star(std::min<graph::NodeId>(scale, 257))});
  w.push_back({"tree", graph::random_tree(scale, seed + 2)});
  return w;
}

/// Buckets node degrees for compact per-degree tables: exact below 8, then
/// powers of two.
inline std::uint64_t degree_bucket(std::uint32_t d) {
  if (d < 8) {
    return d;
  }
  std::uint64_t b = 8;
  while (b * 2 <= d) {
    b *= 2;
  }
  return b;
}

/// Experiment banner: id, paper anchor, and what the table shows.
inline void banner(const std::string& id, const std::string& anchor,
                   const std::string& caption) {
  std::cout << "\n==================================================================\n"
            << id << "  [" << anchor << "]\n"
            << caption << "\n"
            << "==================================================================\n";
}

}  // namespace fhg::bench
