// E8 — Section 6 (dynamic setting): under edge insertions the color-bound
// scheduler recolors only colliding endpoints and recovers within
// φ(d)·2^{log* d + 1} holidays of quiescence; deletions optionally trigger
// rate repair.  Conflict-freedom must hold through arbitrary storms.
//
// Regenerates:
//   (a) insertion storm: recolors ≤ insertions; audit clean every holiday;
//   (b) recovery: after quiescence every touched node re-hosts within its
//       (new) period 2^ρ(col) ≤ 2^ρ(d+1), itself ≤ the paper's bound;
//   (c) deletion policy ablation: slack 0 vs ∞ — hosting-rate
//       proportionality (freq × (d+1)) with and without repair.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/dynamic/dynamic_scheduler.hpp"
#include "fhg/graph/properties.hpp"
#include "fhg/parallel/rng.hpp"

int main() {
  using namespace fhg;
  bench::banner("E8", "Section 6 (dynamic graphs)",
                "Insertion storms, recovery after quiescence, deletion repair ablation");

  // (a)+(b): storm then quiescence.
  analysis::Table storm({"phase", "holidays", "insertions", "recolors", "audit clean",
                         "touched nodes re-hosted within period"});
  {
    graph::DynamicGraph society(graph::gnp(300, 0.01, 5));
    dynamic::DynamicPrefixCodeScheduler scheduler(society);
    parallel::Rng rng(99);
    std::uint64_t insertions = 0;
    std::uint64_t audit_failures = 0;

    // Storm: 100 holidays with heavy insertion traffic.
    for (int t = 0; t < 100; ++t) {
      for (int k = 0; k < 5; ++k) {
        const auto u = static_cast<graph::NodeId>(rng.uniform_below(300));
        const auto v = static_cast<graph::NodeId>(rng.uniform_below(300));
        if (u != v && !society.has_edge(u, v)) {
          static_cast<void>(scheduler.insert_edge(u, v));
          ++insertions;
        }
      }
      const auto happy = scheduler.next_holiday();
      if (!graph::is_independent_set(society.snapshot(), happy)) {
        ++audit_failures;
      }
    }
    const std::uint64_t recolors = scheduler.history().size();
    storm.row()
        .add("storm")
        .add(std::uint64_t{100})
        .add(insertions)
        .add(recolors)
        .add(audit_failures == 0)
        .add("-");

    // Quiescence: every node must host within its current period.
    std::vector<bool> hosted(society.num_nodes(), false);
    std::uint64_t max_period = 1;
    for (graph::NodeId v = 0; v < society.num_nodes(); ++v) {
      max_period = std::max(max_period, scheduler.period_of(v));
    }
    for (std::uint64_t i = 0; i < max_period; ++i) {
      for (const graph::NodeId v : scheduler.next_holiday()) {
        hosted[v] = true;
      }
    }
    bool all_hosted = true;
    for (graph::NodeId v = 0; v < society.num_nodes(); ++v) {
      all_hosted = all_hosted && hosted[v];
    }
    storm.row()
        .add("quiescence")
        .add(max_period)
        .add(std::uint64_t{0})
        .add(std::uint64_t{scheduler.history().size() - recolors})
        .add(true)
        .add(all_hosted);
  }
  storm.print(std::cout);

  // Paper-bound check: the recovered period never exceeds the §6 bound
  // phi(d)·2^{log* d + 1} expressed through colors ≤ d+1.
  analysis::Table bound({"degree d", "worst period seen", "2^rho(d+1)", "paper bound phi(d+1)*2^{log*+1}"});
  {
    graph::DynamicGraph society(graph::gnp(400, 0.015, 7));
    dynamic::DynamicPrefixCodeScheduler scheduler(society);
    parallel::Rng rng(101);
    for (int k = 0; k < 600; ++k) {
      const auto u = static_cast<graph::NodeId>(rng.uniform_below(400));
      const auto v = static_cast<graph::NodeId>(rng.uniform_below(400));
      if (u != v) {
        static_cast<void>(scheduler.insert_edge(u, v));
      }
    }
    std::vector<std::uint64_t> buckets;
    std::vector<double> periods;
    for (graph::NodeId v = 0; v < society.num_nodes(); ++v) {
      buckets.push_back(bench::degree_bucket(society.degree(v)));
      periods.push_back(static_cast<double>(scheduler.period_of(v)));
    }
    for (const auto& row : analysis::group_stats(buckets, periods)) {
      const std::uint64_t d = row.key;
      bound.row()
          .add(d)
          .add(static_cast<std::uint64_t>(row.max))
          .add(std::uint64_t{1} << coding::elias_omega_length(d + 1))
          .add(coding::omega_period_bound(d + 1), 0);
    }
  }
  bound.print(std::cout);

  // (c) Deletion ablation: rate proportionality with/without repair.
  // Start from a clique (col = d+1 exactly for everyone) and delete 80% of
  // the edges: degrees collapse, and without repair the high colors — hence
  // the long periods — stick around ("disproportional to the current
  // degree", §6).
  analysis::Table ablation({"policy", "recolors", "max color excess over d+1", "max period",
                            "mean period", "worst wait factor vs repaired"});
  std::vector<double> mean_periods;
  std::vector<double> max_periods;
  for (const auto& [label, slack] :
       std::vector<std::pair<std::string, std::uint32_t>>{{"repair (slack 0)", 0},
                                                          {"no repair (slack 10^6)", 1'000'000}}) {
    graph::DynamicGraph society(graph::clique(64));
    dynamic::DynamicPrefixCodeScheduler scheduler(society, coding::CodeFamily::kEliasOmega, slack);
    parallel::Rng rng(303);
    auto edges = society.snapshot().edges();
    rng.shuffle(edges);
    for (std::size_t i = 0; i < edges.size() * 4 / 5; ++i) {
      static_cast<void>(scheduler.erase_edge(edges[i].first, edges[i].second));
    }
    std::uint64_t max_excess = 0;
    double mean_period = 0.0;
    std::uint64_t max_period = 0;
    for (graph::NodeId v = 0; v < society.num_nodes(); ++v) {
      const std::uint64_t color = scheduler.color_of(v);
      const std::uint64_t budget = society.degree(v) + 1;
      max_excess = std::max(max_excess, color > budget ? color - budget : 0);
      mean_period += static_cast<double>(scheduler.period_of(v));
      max_period = std::max(max_period, scheduler.period_of(v));
    }
    mean_period /= society.num_nodes();
    mean_periods.push_back(mean_period);
    max_periods.push_back(static_cast<double>(max_period));
    ablation.row()
        .add(label)
        .add(static_cast<std::uint64_t>(scheduler.history().size()))
        .add(max_excess)
        .add(max_period)
        .add(mean_period, 1)
        .add(max_periods.front() == 0.0 ? 0.0 : max_periods.back() / max_periods.front(), 1);
  }
  ablation.print(std::cout);
  std::cout << "RESULT: repair re-fits colors to the shrunken degrees (col <= d+1, short\n"
               "periods); without it colors up to the old clique size survive and the worst\n"
               "period is a large multiple — §6's 'disproportional rate' made concrete.\n";
  return 0;
}
