// E20 — the sharded asynchronous service pipeline vs the direct synchronous
// query path (google-benchmark; emits machine-readable JSON for the CI perf
// gate).
//
// The same deterministic `fhg::workload` request stream served two ways over
// an identical 10k-tenant fleet:
//
//   direct     — the pre-service caller pattern: one thread issuing
//                `Engine::is_happy` / `Engine::next_gathering` per request,
//                paying a registry hash + shard mutex + shared_ptr bump on
//                every probe;
//   service-N  — `fhg::service::Service` with N shards: client threads
//                submit single name-addressed requests (callback flavor,
//                bounded closed-loop window), shard workers drain their
//                queues and coalesce whatever accumulated into
//                `QuerySnapshot::query_batch` / `next_gathering_batch`
//                calls — single-request callers transparently riding the
//                batched lock-free read path.
//
// The acceptance configuration (10k-tenant power-law fleet, 64k-request
// stream) requires `service-4` to beat `direct` by >= 2x
// (tools/check_bench.py enforces this from the JSON output; the checked-in
// baseline gates regressions).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/protocol.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::size_t kStreamLength = 65'536;  ///< requests per iteration
/// Load-generator threads.  Two, deliberately: submit capacity already
/// exceeds the worker-side bottleneck, and on 4-vCPU CI runners fewer
/// client threads leave the cores to the shard workers being measured.
constexpr std::size_t kClients = 2;
constexpr std::size_t kWindow = 2048;          ///< outstanding requests per client

/// One fully built fleet plus the prebuilt request stream (name-addressed
/// `api::Request` values), shared by every strategy so they serve an
/// identical workload.  The acceptance stream is query-only, so each
/// request is either `IsHappyRequest` or `NextGatheringRequest`.
struct Fleet {
  explicit Fleet(const workload::ScenarioSpec& spec) : generator(spec) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    requests = generator.request_stream(kStreamLength, 0);
  }

  workload::ScenarioGenerator generator;
  std::unique_ptr<engine::Engine> engine;
  std::vector<api::Request> requests;
};

Fleet& fleet_for(const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e20: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec);
  }
  return *slot;
}

/// The single-threaded synchronous query loop: what a front-end without the
/// service layer would do per request.
void BM_Direct(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (const api::Request& request : fleet.requests) {
      if (const auto* next = std::get_if<api::NextGatheringRequest>(&request)) {
        hits += fleet.engine->next_gathering(next->instance, next->node, next->after)
                    .value_or(engine::kNoGathering) != engine::kNoGathering;
      } else {
        const auto& happy = std::get<api::IsHappyRequest>(request);
        hits += fleet.engine->is_happy(happy.instance, happy.node, happy.holiday);
      }
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.requests.size()));
}

/// The asynchronous pipeline: kClients submitter threads, `shards` workers
/// coalescing.  Failures abort (the stream is valid by construction).
void BM_Service(benchmark::State& state, const std::string& scenario, std::size_t shards) {
  Fleet& fleet = fleet_for(scenario);
  for (auto _ : state) {
    service::Service service(*fleet.engine,
                             {.shards = shards, .queue_capacity = 4 * kWindow * kClients});
    std::atomic<std::uint64_t> failures{0};
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        // Contiguous slice per client; the last client absorbs the remainder.
        const std::size_t per_client = fleet.requests.size() / kClients;
        const std::size_t begin = c * per_client;
        const std::size_t end = c + 1 == kClients ? fleet.requests.size() : begin + per_client;
        std::atomic<std::uint64_t> outstanding{0};
        for (std::size_t i = begin; i < end; ++i) {
          const api::Request& request = fleet.requests[i];
          while (outstanding.load(std::memory_order_acquire) >= kWindow) {
            std::this_thread::yield();
          }
          outstanding.fetch_add(1, std::memory_order_acq_rel);
          for (;;) {
            std::optional<service::Reject> reject;
            if (const auto* next = std::get_if<api::NextGatheringRequest>(&request)) {
              reject = service.next_gathering(next->instance, next->node, next->after,
                                              [&](service::Outcome<std::uint64_t> outcome) {
                                                if (!outcome.ok()) {
                                                  failures.fetch_add(1,
                                                                     std::memory_order_relaxed);
                                                }
                                                outstanding.fetch_sub(1,
                                                                      std::memory_order_acq_rel);
                                              });
            } else {
              const auto& happy = std::get<api::IsHappyRequest>(request);
              reject = service.is_happy(happy.instance, happy.node, happy.holiday,
                                        [&](service::Outcome<bool> outcome) {
                                          if (!outcome.ok()) {
                                            failures.fetch_add(1, std::memory_order_relaxed);
                                          }
                                          outstanding.fetch_sub(1, std::memory_order_acq_rel);
                                        });
            }
            if (!reject) {
              break;
            }
            std::this_thread::yield();  // backpressure: retry in closed loop
          }
        }
        while (outstanding.load(std::memory_order_acquire) > 0) {
          std::this_thread::yield();
        }
      });
    }
    for (std::thread& client : clients) {
      client.join();
    }
    service.drain();
    if (failures.load() != 0) {
      state.SkipWithError("service request failed on a valid stream");
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.requests.size()));
}

/// Acceptance configuration: 10k periodic tenants, query-only stream.
const char* kAcceptance = "power-law:fleet=10000,nodes=48,aperiodic=0,horizon=1024";

void register_all() {
  // Wall-clock rates: the service strategies do their work on shard workers
  // and client threads, so main-thread CPU time would wildly overstate them.
  benchmark::RegisterBenchmark("direct/acceptance-10k", [](benchmark::State& s) {
    BM_Direct(s, kAcceptance);
  })->UseRealTime();
  for (const std::size_t shards : {1, 2, 4, 8}) {
    benchmark::RegisterBenchmark(("service-" + std::to_string(shards) + "/acceptance-10k").c_str(),
                                 [shards](benchmark::State& s) {
                                   BM_Service(s, kAcceptance, shards);
                                 })
        ->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
