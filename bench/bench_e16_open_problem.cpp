// E16 (extension) — probing the paper's open problem (§6): "if one requires
// a periodic schedule then the best guarantee obtainable is d + ω(1)".
//
// With general periods, a periodic schedule with `P_v = deg(v) + k` exists
// iff residues can be chosen with `r_u ≢ r_w (mod gcd(P_u, P_w))` on every
// edge; on small graphs this is decidable exactly by backtracking.
//
// With **bounded** periods P_v ≤ deg(v)+k searched jointly with residues,
// this regenerates:
//   (a) the minimum uniform slack k over a zoo of small graphs — how close
//       perfect periodicity gets to the non-periodic d+1 guarantee when
//       periods need not be powers of two;
//   (b) the comparison against §5's power-of-two periods (2^⌈log(d+1)⌉),
//       quantifying how much the general-period relaxation buys;
//   (c) the structural obstruction behind *exact*-period failures: coprime
//       period pairs conflict at every alignment (probed in tests), which
//       is why the inequality in the guarantee matters.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/core/periodic_probe.hpp"

int main() {
  using namespace fhg;
  bench::banner("E16", "extension (the §6 open problem, probed exactly on small graphs)",
                "Minimum uniform slack k with periods deg+k vs the power-of-two 2d bound");

  analysis::Table table({"graph", "n", "Delta", "min slack k", "worst period deg+k",
                         "worst period sec.5 (2^ceil)", "general-period gain"});
  const std::vector<std::pair<std::string, graph::Graph>> zoo = {
      {"triangle K3", graph::clique(3)},
      {"clique K5", graph::clique(5)},
      {"clique K8", graph::clique(8)},
      {"cycle C5", graph::cycle(5)},
      {"cycle C9", graph::cycle(9)},
      {"star S3 (odd hub)", graph::star(3)},
      {"star S4 (even hub)", graph::star(4)},
      {"star S9", graph::star(9)},
      {"K3,3", graph::complete_bipartite(3, 3)},
      {"path P8", graph::path(8)},
      {"grid 3x3", graph::grid2d(3, 3)},
      {"grid 4x4", graph::grid2d(4, 4)},
      {"gnp(12,.3)", graph::gnp(12, 0.3, 5)},
      {"gnp(14,.25)", graph::gnp(14, 0.25, 7)},
      {"caterpillar(4,2)", graph::caterpillar(4, 2)},
  };
  for (const auto& [name, g] : zoo) {
    const auto probe = core::min_uniform_slack(g, /*max_slack=*/8, /*node_budget=*/5'000'000);
    std::uint64_t worst_general = 0;
    std::uint64_t worst_pow2 = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const std::uint64_t d = g.degree(v);
      if (probe) {
        worst_general = std::max(worst_general, probe->slots[v].period);
      }
      worst_pow2 = std::max(worst_pow2, std::uint64_t{1} << coding::ceil_log2(d + 1));
    }
    table.row()
        .add(name)
        .add(std::uint64_t{g.num_nodes()})
        .add(std::uint64_t{g.max_degree()})
        .add(probe ? std::to_string(probe->slack) : std::string(">8"))
        .add(probe ? std::to_string(worst_general) : std::string("-"))
        .add(worst_pow2)
        .add(probe && worst_general < worst_pow2);
  }
  table.print(std::cout);

  std::cout
      << "Reading: on every small instance probed the minimum slack is k = 1 or 2 —\n"
         "perfect periodicity matches the non-periodic d+1 guarantee (or misses by one)\n"
         "once periods may be general integers.  The conjectured d+omega(1) separation,\n"
         "if true, must emerge asymptotically; it is invisible at this scale.  General\n"
         "periods beat the sec. 5 power-of-two rounding whenever deg+k falls strictly\n"
         "under the next power of two (cliques K3/K5, odd cycles, big stars).\n";
  return 0;
}
