// E3 — Theorem 4.1: any color-based schedule with one color per holiday and
// mul(c) = f(c) must satisfy Σ_c 1/f(c) ≤ 1; by the Cauchy condensation
// test, φ(c) = c·log c·log log c··· is the threshold growth.
//
// Regenerates the numeric content of the proof:
//   (a) direct partial sums Σ_{c≤N} 1/f(c) for candidate f — anything at or
//       below φ blows through the budget of 1; c^{1.01} and 2^c stay bounded;
//   (b) the condensation identity: 2^k / φ(2^k) = 1 / φ(k), i.e. condensing
//       Σ 1/φ reproduces Σ 1/φ one exponential level down — the recursion
//       that makes φ exactly critical;
//   (c) the schedule-side budget: Kraft sums of the omega code book, which
//       is how the §4.2 construction spends (and never exceeds) the budget.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/elias.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/coding/prefix.hpp"

int main() {
  using namespace fhg;
  using coding::phi;
  bench::banner("E3", "Theorem 4.1 (lower bound via Cauchy condensation)",
                "Budget check: sum of 1/f(c) must stay <= 1 for a feasible schedule");

  const auto f_linear = [](std::uint64_t c) { return static_cast<double>(c); };
  const auto f_clogc = [](std::uint64_t c) {
    return c < 2 ? 1.0 : static_cast<double>(c) * std::log2(static_cast<double>(c));
  };
  const auto f_phi = [](std::uint64_t c) { return phi(static_cast<double>(c)); };
  const auto f_power = [](std::uint64_t c) { return std::pow(static_cast<double>(c), 1.01); };
  const auto f_exp = [](std::uint64_t c) {
    return c >= 1024 ? 1e300 : std::exp2(static_cast<double>(c));
  };

  analysis::Table direct({"N", "f=c", "f=c log c", "f=phi(c)", "f=c^1.01", "f=2^c"});
  double s_linear = 0;
  double s_clogc = 0;
  double s_phi = 0;
  double s_power = 0;
  double s_exp = 0;
  std::uint64_t next_checkpoint = 100;
  for (std::uint64_t c = 1; c <= 10'000'000; ++c) {
    s_linear += 1.0 / f_linear(c);
    s_clogc += 1.0 / f_clogc(c);
    s_phi += 1.0 / f_phi(c);
    s_power += 1.0 / f_power(c);
    s_exp += 1.0 / f_exp(c);
    if (c == next_checkpoint) {
      direct.row().add(c).add(s_linear, 2).add(s_clogc, 2).add(s_phi, 2).add(s_power, 2).add(
          s_exp, 6);
      next_checkpoint *= 100;
    }
  }
  direct.print(std::cout);
  std::cout << "Budget is 1: f = c, c log c and phi(c) are already far beyond it — no\n"
               "schedule can achieve mul(c) = O(phi(c)) with constant 1; f = c^1.01 and 2^c\n"
               "stay bounded (and indeed admit schedules).\n";

  // (b) The condensation identity that powers the proof.
  analysis::Table condensed({"k", "2^k / phi(2^k)", "1 / phi(k)", "equal"});
  for (std::uint32_t k = 1; k <= 48; k += 4) {
    const double lhs = std::exp2(static_cast<double>(k)) / phi(std::exp2(static_cast<double>(k)));
    const double rhs = 1.0 / phi(static_cast<double>(k));
    condensed.row().add(std::uint64_t{k}).add(lhs, 8).add(rhs, 8).add(
        std::abs(lhs - rhs) < 1e-9 * rhs);
  }
  std::cout << "\nCauchy condensation level-drop identity (phi is self-similar):\n";
  condensed.print(std::cout);

  // (c) How the omega-code schedule spends the budget: Kraft mass of the
  // first N codewords (= fraction of holidays consumed).
  analysis::Table kraft({"colors N", "Kraft sum of omega book", "<= 1"});
  for (std::uint64_t n : {16ULL, 256ULL, 4096ULL, 65536ULL}) {
    std::vector<coding::BitString> book;
    book.reserve(n);
    for (std::uint64_t c = 1; c <= n; ++c) {
      book.push_back(coding::elias_omega(c));
    }
    const double sum = coding::kraft_sum(book);
    kraft.row().add(n).add(sum, 6).add(sum <= 1.0 + 1e-12);
  }
  std::cout << "\nSchedule-side budget (the §4.2 construction):\n";
  kraft.print(std::cout);
  return 0;
}
