// E10 — Appendix A.3: maximum satisfaction is computable in linear time by
// the specialized peeling/orientation algorithm, versus the general
// Hopcroft–Karp reduction (O(√n · m)); both give the same optimum, and the
// alternation schedule satisfies everyone within 2 holidays.
//
// Regenerates: value-equality table, wall-clock scaling of both algorithms
// (google-benchmark), and the alternation guarantee audit.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/matching/satisfaction.hpp"
#include "fhg/matching/satisfaction_scheduler.hpp"

namespace {

using namespace fhg;

graph::Graph workload(std::uint32_t scale) {
  return graph::gnp(scale, 3.0 / static_cast<double>(scale), 23);
}

void BM_SatisfactionHopcroftKarp(benchmark::State& state) {
  const graph::Graph g = workload(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    const auto result = matching::max_satisfaction_matching(g);
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_SatisfactionHopcroftKarp)->RangeMultiplier(4)->Range(1'000, 256'000)
    ->Unit(benchmark::kMillisecond);

void BM_SatisfactionLinear(benchmark::State& state) {
  const graph::Graph g = workload(static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    const auto result = matching::max_satisfaction_linear(g);
    benchmark::DoNotOptimize(result.value);
  }
}
BENCHMARK(BM_SatisfactionLinear)->RangeMultiplier(4)->Range(1'000, 256'000)
    ->Unit(benchmark::kMillisecond);

void print_tables() {
  bench::banner("E10", "Appendix A.3 (maximum satisfaction)",
                "Linear peeling == Hopcroft-Karp optimum; alternation gap <= 2");
  analysis::Table values({"n", "edges", "optimum (linear)", "optimum (HK)", "equal",
                          "min(n_c,m_c) oracle"});
  for (const std::uint32_t n : {1'000U, 10'000U, 100'000U}) {
    const graph::Graph g = workload(n);
    const auto linear = matching::max_satisfaction_linear(g);
    const auto hk = matching::max_satisfaction_matching(g);
    const auto oracle = matching::max_satisfaction_value(g);
    values.row()
        .add(std::uint64_t{n})
        .add(static_cast<std::uint64_t>(g.num_edges()))
        .add(static_cast<std::uint64_t>(linear.value))
        .add(static_cast<std::uint64_t>(hk.value))
        .add(linear.value == hk.value && hk.value == oracle)
        .add(static_cast<std::uint64_t>(oracle));
  }
  values.print(std::cout);

  // Satisfaction schedulers head to head: the appendix's "socially
  // unacceptable" static optimum vs alternation vs the max-flip hybrid.
  const graph::Graph g = graph::gnp(5'000, 0.001, 29);
  const std::size_t optimum = matching::max_satisfaction_value(g);
  std::size_t eligible = 0;  // parents with at least one married child
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    eligible += g.degree(v) > 0 ? 1 : 0;
  }
  analysis::Table schedulers({"scheduler", "satisfied/holiday (mean)", "worst gap",
                              "starved forever", "guarantees hold"});
  const auto add_row = [&](matching::SatisfactionScheduler& s) {
    const auto report = matching::run_satisfaction(s, 64);
    std::uint64_t worst = 0;
    std::size_t starved = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (g.degree(v) == 0) {
        continue;
      }
      if (report.max_gap[v] > 64) {
        ++starved;
      } else {
        worst = std::max(worst, report.max_gap[v]);
      }
    }
    schedulers.row()
        .add(s.name())
        .add(static_cast<double>(report.total_satisfied) / 64.0, 1)
        .add(worst)
        .add(starved)
        .add(report.bounds_respected);
  };
  matching::StaticOptimumScheduler static_optimum(g);
  matching::AlternationScheduler alternation(g);
  matching::MaxFlipScheduler max_flip(g);
  add_row(static_optimum);
  add_row(alternation);
  add_row(max_flip);
  std::cout << "\nSatisfaction schedulers (one-shot optimum = " << optimum << ", eligible = "
            << eligible << "):\n";
  schedulers.print(std::cout);
  std::cout << "max-flip achieves the optimum every odd holiday while starving nobody —\n"
               "strictly better than repeating the optimum (appendix's complaint) and at\n"
               "least as good as plain alternation.\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
