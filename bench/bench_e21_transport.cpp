// E21 — one protocol, two transports: the unified `fhg::api` client driving
// an identical fleet through the in-process transport vs a real TCP loopback
// socket (google-benchmark; emits machine-readable JSON for the CI perf
// gate).
//
// Both strategies serve the same deterministic `fhg::workload` request
// stream through the same sharded `fhg::service` pipeline; the only variable
// is the wire:
//
//   inproc-N — `api::Client` over `InProcessTransport`: encode → decode →
//              shard FIFO → coalesced engine batch → encode → decode, all in
//              one process.  This is the codec + service overhead an
//              embedded front-end pays.
//   socket-N — the same frames over TCP loopback into a `SocketServer`,
//              one connection per client thread, synchronous roundtrips.
//              This adds two kernel crossings and TCP framing per request —
//              the floor for a networked deployment.
//
// Every request is individually timed: each series reports `p50_us` and
// `p99_us` user counters next to its throughput, because tail latency is a
// fairness property of the serving layer — a high-throughput transport that
// stalls its slowest percentile is still failing some caller periodically.
// The CI gate (tools/check_bench.py against bench/baselines/bench_e21.json)
// holds throughput within the standard 2x regression bound and the latency
// counters within --max-latency-regression; the in-process rate is the one
// that must keep pace with the PR 4 service numbers, since it is the same
// pipeline plus the codec.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "fhg/api/client.hpp"
#include "fhg/api/protocol.hpp"
#include "fhg/api/socket.hpp"
#include "fhg/api/transport.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/service/service.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::size_t kStreamLength = 16'384;  ///< requests per iteration
constexpr std::size_t kClients = 4;            ///< client threads (connections)
constexpr std::size_t kServiceShards = 4;

/// One fully built fleet plus the prebuilt request stream, shared by both
/// strategies so they serve an identical workload.
struct Fleet {
  explicit Fleet(const workload::ScenarioSpec& spec) : generator(spec) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    requests = generator.request_stream(kStreamLength, 0);
  }

  workload::ScenarioGenerator generator;
  std::unique_ptr<engine::Engine> engine;
  std::vector<api::Request> requests;
};

Fleet& fleet_for(const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e21: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec);
  }
  return *slot;
}

/// Drives the fleet's stream through `kClients` concurrent clients, each
/// with its own transport from `make_transport`, timing every roundtrip
/// into `latencies_us`.  Aborts the benchmark on any failed request (the
/// stream is valid by construction).
template <typename MakeTransport>
void run_clients(benchmark::State& state, Fleet& fleet, MakeTransport make_transport,
                 std::vector<std::uint64_t>& latencies_us) {
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::vector<std::uint64_t>> samples(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      // Contiguous slice per client; the last client absorbs the remainder.
      const std::size_t per_client = fleet.requests.size() / kClients;
      const std::size_t begin = c * per_client;
      const std::size_t end = c + 1 == kClients ? fleet.requests.size() : begin + per_client;
      samples[c].reserve(end - begin);
      api::Client client(make_transport());
      for (std::size_t i = begin; i < end; ++i) {
        const auto start = std::chrono::steady_clock::now();
        const bool ok = client.call(fleet.requests[i]).ok();
        samples[c].push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start)
                .count()));
        if (!ok) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) {
    client.join();
  }
  for (const auto& client_samples : samples) {
    latencies_us.insert(latencies_us.end(), client_samples.begin(), client_samples.end());
  }
  if (failures.load() != 0) {
    state.SkipWithError("request failed on a valid stream");
  }
}

/// Publishes p50/p99 of the accumulated per-request latencies as user
/// counters, so the JSON the CI gate reads carries tail latency next to
/// throughput.
void report_latency(benchmark::State& state, std::vector<std::uint64_t>& latencies_us) {
  if (latencies_us.empty()) {
    return;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const auto percentile = [&](double q) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(latencies_us.size() - 1));
    return static_cast<double>(latencies_us[rank]);
  };
  state.counters["p50_us"] = benchmark::Counter(percentile(0.50));
  state.counters["p99_us"] = benchmark::Counter(percentile(0.99));
}

void BM_InProcess(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  std::vector<std::uint64_t> latencies_us;
  for (auto _ : state) {
    service::Service service(*fleet.engine, {.shards = kServiceShards});
    run_clients(state, fleet,
                [&service] { return std::make_unique<api::InProcessTransport>(service); },
                latencies_us);
    service.drain();
  }
  report_latency(state, latencies_us);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.requests.size()));
}

void BM_Socket(benchmark::State& state, const std::string& scenario) {
  Fleet& fleet = fleet_for(scenario);
  std::vector<std::uint64_t> latencies_us;
  for (auto _ : state) {
    service::Service service(*fleet.engine, {.shards = kServiceShards});
    api::SocketServer server(service, {});
    run_clients(state, fleet, [&server] {
      return std::make_unique<api::SocketTransport>(server.host(), server.port());
    }, latencies_us);
    server.stop();
    service.drain();
  }
  report_latency(state, latencies_us);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * fleet.requests.size()));
}

/// Acceptance configuration: 2k periodic tenants, query-only stream — small
/// enough for CI runners, large enough that coalescing matters.
const char* kAcceptance = "power-law:fleet=2000,nodes=48,aperiodic=0,horizon=1024";

void register_all() {
  // Wall-clock rates: the work happens on client and shard-worker threads.
  benchmark::RegisterBenchmark("inproc-4/acceptance-2k", [](benchmark::State& s) {
    BM_InProcess(s, kAcceptance);
  })->UseRealTime();
  benchmark::RegisterBenchmark("socket-4/acceptance-2k", [](benchmark::State& s) {
    BM_Socket(s, kAcceptance);
  })->UseRealTime();
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
