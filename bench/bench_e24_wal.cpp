// E24 — WAL durability tax on the live mutation path
// (google-benchmark; emits machine-readable JSON for the CI perf gate).
//
// The same §6 in-place mutation pipeline bench_e19 measures, served three
// ways over identical fhg::workload fleets and identical seeded command
// streams:
//
//   nowal      — `Engine::apply_mutations` with no sink attached: the
//                bench_e19 "inplace" path, re-measured here so the ratio is
//                computed within one run instead of across two binaries;
//   wal        — a `wal::Manager` attached with fsync off: the batch is
//                Elias-encoded, CRC-framed, and written to the per-shard log
//                before every republish, but the OS flushes at its leisure —
//                the pure encode+write overhead of durable-before-visible;
//   wal-fsync  — fsync_every=1: the full durability guarantee, every append
//                waits for the disk.  Reported for visibility; not gated,
//                because its cost is the storage stack's, not the code's.
//
// The acceptance configuration (4k-tenant power-law fleet) requires `wal`
// to stay within 1.5x of `nowal` (tools/check_bench.py enforces
// time(wal) <= 1.5 * time(nowal) via --min-speedup wal nowal 0.6667; the
// checked-in baseline gates regressions).

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "fhg/dynamic/mutation.hpp"
#include "fhg/engine/engine.hpp"
#include "fhg/wal/wal.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::uint64_t kStepDepth = 64;  ///< holidays each fleet is stepped before mutating

/// WAL fsync policy per strategy; nullopt = no WAL attached.
struct Durability {
  bool enabled = false;
  std::uint64_t fsync_every = 0;
};

/// One fully built all-dynamic fleet, optionally fronted by a WAL whose
/// scratch directory lives under $TMPDIR for the life of the process.
struct Fleet {
  Fleet(const workload::ScenarioSpec& spec, const Durability& durability) : generator(spec) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    (void)engine->step_all(kStepDepth);
    recipe_nodes.reserve(spec.fleet);
    for (std::size_t i = 0; i < spec.fleet; ++i) {
      recipe_nodes.push_back(engine->find(generator.tenant_name(i))->graph().num_nodes());
    }
    if (durability.enabled) {
      std::string tmpl =
          (std::filesystem::temp_directory_path() / "fhg-e24-XXXXXX").string();
      std::vector<char> buffer(tmpl.begin(), tmpl.end());
      buffer.push_back('\0');
      if (::mkdtemp(buffer.data()) == nullptr) {
        throw std::runtime_error("bench_e24: mkdtemp failed");
      }
      wal_dir = buffer.data();
      wal = std::make_unique<wal::Manager>(
          *engine, wal::WalOptions{.dir = wal_dir, .fsync_every = durability.fsync_every});
      (void)wal->recover();
      wal->compact();  // seal the built fleet: appends start from a base
      engine->attach_wal(wal.get());
    }
  }

  ~Fleet() {
    if (engine && wal) {
      engine->attach_wal(nullptr);
    }
    wal.reset();
    if (!wal_dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(wal_dir, ec);
    }
  }

  workload::ScenarioGenerator generator;
  std::unique_ptr<engine::Engine> engine;
  std::unique_ptr<wal::Manager> wal;
  std::string wal_dir;
  /// Per-slot node count captured *before* any mutation, so the seeded
  /// command streams stay identical across strategies and rounds.
  std::vector<graph::NodeId> recipe_nodes;
  std::uint64_t round = 0;  ///< advances across iterations
};

/// Separate cache per (strategy, scenario): each strategy evolves its own
/// fleet's topology (and its own log) independently.
Fleet& fleet_for(const std::string& strategy, const std::string& scenario,
                 const Durability& durability) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[strategy + "|" + scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e24: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec, durability);
  }
  return *slot;
}

void BM_Mutate(benchmark::State& state, const std::string& strategy,
               const std::string& scenario, const Durability& durability) {
  Fleet& fleet = fleet_for(strategy, scenario, durability);
  const std::size_t fleet_size = fleet.generator.spec().fleet;
  if (fleet.round == 0) {
    // Untimed warm-up round: the first pass over a fresh fleet pays one-off
    // costs (cold period-table rebuilds; for WAL fleets, segment creation
    // and cold page-cache writes) that would dominate short CI runs and
    // skew the wal/nowal ratio.  Identical work for every strategy.
    for (std::size_t slot = 0; slot < fleet_size; ++slot) {
      (void)fleet.engine->apply_mutations(
          fleet.generator.tenant_name(slot),
          fleet.generator.mutation_commands(slot, fleet.round, fleet.recipe_nodes[slot]));
    }
    ++fleet.round;
  }
  std::uint64_t commands = 0;
  for (auto _ : state) {
    for (std::size_t slot = 0; slot < fleet_size; ++slot) {
      const std::string name = fleet.generator.tenant_name(slot);
      const auto mix =
          fleet.generator.mutation_commands(slot, fleet.round, fleet.recipe_nodes[slot]);
      (void)fleet.engine->apply_mutations(name, mix);
      commands += mix.size();
    }
    ++fleet.round;
  }
  benchmark::DoNotOptimize(commands);
  state.SetItemsProcessed(static_cast<std::int64_t>(commands));
  if (fleet.wal) {
    const engine::WalSinkStats stats = fleet.wal->stats();
    state.counters["wal_bytes"] = static_cast<double>(stats.wal_bytes);
    state.counters["fsyncs"] = static_cast<double>(stats.fsyncs);
  }
}

struct Strategy {
  const char* name;
  Durability durability;
};

const Strategy kStrategies[] = {
    {"nowal", {.enabled = false, .fsync_every = 0}},
    {"wal", {.enabled = true, .fsync_every = 0}},
    {"wal-fsync", {.enabled = true, .fsync_every = 1}},
};

/// All-dynamic fleets so every slot exercises the mutation path.
const char* kSweep[] = {
    "power-law:fleet=1000,nodes=48,aperiodic=0,dynamic=1,horizon=1024",
};

/// Acceptance configuration: a 4k-tenant power-law fleet (bench_e19's).
const char* kAcceptance = "power-law:fleet=4000,nodes=48,aperiodic=0,dynamic=1,horizon=1024";

void register_all() {
  for (const Strategy& strategy : kStrategies) {
    for (const char* scenario : kSweep) {
      const auto spec = workload::parse_scenario(scenario);
      const std::string family = workload::graph_family_name(spec->family);
      benchmark::RegisterBenchmark(
          (std::string(strategy.name) + "/" + family).c_str(),
          [&strategy, scenario](benchmark::State& s) {
            BM_Mutate(s, strategy.name, scenario, strategy.durability);
          });
    }
    benchmark::RegisterBenchmark(
        (std::string(strategy.name) + "/acceptance-4k").c_str(),
        [&strategy](benchmark::State& s) {
          BM_Mutate(s, strategy.name, kAcceptance, strategy.durability);
        });
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
