// E6 — Section 5.2: the distributed degree-bound algorithm runs in
// ⌈log(Δ+1)⌉ phases of palette-restricted randomized coloring and preserves
// the Theorem 5.3 guarantee.
//
// Regenerates:
//   (a) rounds/messages vs n at constant average degree — the O(log Δ)
//       phases × O(log n) rounds-per-phase shape;
//   (b) rounds vs Δ on stars — the phase count tracks ⌈log(Δ+1)⌉;
//   (c) the guarantee audit: slots conflict-free with exact periods, same
//       as the sequential assignment.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/distributed/degree_bound.hpp"

int main() {
  using namespace fhg;
  bench::banner("E6", "Section 5.2",
                "Distributed degree-bound: rounds vs n and vs Delta; guarantee preserved");

  analysis::Table scaling({"n", "edges", "Delta", "phases", "rounds", "msgs/round",
                           "conflict-free", "period<=2d"});
  for (const graph::NodeId n : {1024U, 4096U, 16384U, 65536U}) {
    const graph::Graph g = graph::gnp(n, 8.0 / static_cast<double>(n), 17);
    const auto run = distributed::distributed_degree_bound(g, 3);
    bool periods_ok = true;
    for (graph::NodeId v = 0; v < n; ++v) {
      const std::uint64_t d = g.degree(v);
      periods_ok = periods_ok && run.slots[v].length == coding::ceil_log2(d + 1) &&
                   (d == 0 ? run.slots[v].period() == 1 : run.slots[v].period() <= 2 * d);
    }
    scaling.row()
        .add(std::uint64_t{n})
        .add(static_cast<std::uint64_t>(g.num_edges()))
        .add(std::uint64_t{g.max_degree()})
        .add(std::uint64_t{run.phases})
        .add(run.stats.rounds)
        .add(run.stats.messages_per_round(), 1)
        .add(core::slots_conflict_free(g, run.slots))
        .add(periods_ok);
  }
  scaling.print(std::cout);

  analysis::Table delta_sweep({"star size", "Delta", "ceil(log(D+1))", "phases", "rounds"});
  for (const graph::NodeId n : {9U, 33U, 129U, 1025U, 8193U}) {
    const graph::Graph g = graph::star(n);
    const auto run = distributed::distributed_degree_bound(g, 5);
    delta_sweep.row()
        .add(std::uint64_t{n})
        .add(std::uint64_t{g.max_degree()})
        .add(std::uint64_t{coding::ceil_log2(g.max_degree() + 1)})
        .add(std::uint64_t{run.phases})
        .add(run.stats.rounds);
  }
  std::cout << "\nPhase count tracks the degree classes present (stars have exactly 2):\n";
  delta_sweep.print(std::cout);

  std::cout << "RESULT: rounds grow ~ phases x O(log n); guarantee identical to sequential §5.1.\n";
  return 0;
}
