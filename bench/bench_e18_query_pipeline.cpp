// E18 — the batched lock-free query pipeline vs. one-at-a-time serving
// (google-benchmark; emits machine-readable JSON for the CI perf gate).
//
// Three serving strategies over identical fhg::workload fleets:
//
//   name-lookup — `Engine::is_happy(name, v, t)` per probe: registry hash +
//                 shard mutex on every query (the PR-1 serving path);
//   handle      — `Instance::is_happy` on pre-resolved shared_ptr handles:
//                 no lookup, but probes land in fleet-random order;
//   batch       — `Engine::query_batch` over a `QuerySnapshot`: one atomic
//                 snapshot load, probes answered in (instance, node)-sorted
//                 order against shared structure-of-arrays period tables.
//
// Swept across scenario families (ring / grid / power-law /
// random-geometric) and, for the acceptance configuration, a 10k-instance
// fleet at 64k probes per batch — where `batch` must beat `name-lookup` by
// >= 5x (tools/check_bench.py enforces this from the JSON output).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fhg/engine/engine.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

constexpr std::uint64_t kStepDepth = 64;  ///< holidays each fleet is stepped before querying

/// One fully built serving setup, cached across benchmark registrations so a
/// 10k-instance fleet is constructed once, not once per strategy.
struct Fleet {
  explicit Fleet(const workload::ScenarioSpec& spec) : generator(spec) {
    engine = std::make_unique<engine::Engine>(engine::EngineOptions{.shards = 64, .threads = 0});
    generator.populate(*engine);
    (void)engine->step_all(kStepDepth);
    snapshot = engine->query_snapshot();
  }

  workload::ScenarioGenerator generator;
  std::unique_ptr<engine::Engine> engine;
  std::shared_ptr<const engine::QuerySnapshot> snapshot;
};

Fleet& fleet_for(const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<Fleet>> cache;
  auto& slot = cache[scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e18: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<Fleet>(*spec);
  }
  return *slot;
}

/// The probe set of round 0, shared verbatim by all three strategies.
std::vector<engine::Probe> probe_set(Fleet& fleet, std::size_t count) {
  workload::ProbeRound round = fleet.generator.probes(*fleet.snapshot, count);
  std::vector<engine::Probe> probes = std::move(round.membership);
  probes.insert(probes.end(), round.next_gathering.begin(), round.next_gathering.end());
  return probes;
}

void BM_QueryBatch(benchmark::State& state, const std::string& scenario, std::size_t probes_n) {
  Fleet& fleet = fleet_for(scenario);
  const std::vector<engine::Probe> probes = probe_set(fleet, probes_n);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const std::vector<std::uint8_t> out = fleet.engine->query_batch(probes);
    for (const std::uint8_t m : out) {
      hits += m;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * probes.size()));
  state.counters["probes"] = static_cast<double>(probes.size());
}

void BM_QuerySingleHandle(benchmark::State& state, const std::string& scenario,
                          std::size_t probes_n) {
  Fleet& fleet = fleet_for(scenario);
  const std::vector<engine::Probe> probes = probe_set(fleet, probes_n);
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (const engine::Probe& probe : probes) {
      hits += fleet.snapshot->instance(probe.instance)->is_happy(probe.node, probe.holiday) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * probes.size()));
  state.counters["probes"] = static_cast<double>(probes.size());
}

void BM_QuerySingleName(benchmark::State& state, const std::string& scenario,
                        std::size_t probes_n) {
  Fleet& fleet = fleet_for(scenario);
  const std::vector<engine::Probe> probes = probe_set(fleet, probes_n);
  // Materialize the name strings once; the loop still pays lookup per probe.
  std::vector<std::string> names;
  names.reserve(fleet.snapshot->size());
  for (std::uint32_t id = 0; id < fleet.snapshot->size(); ++id) {
    names.push_back(fleet.snapshot->instance(id)->name());
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    for (const engine::Probe& probe : probes) {
      hits += fleet.engine->is_happy(names[probe.instance], probe.node, probe.holiday) ? 1 : 0;
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * probes.size()));
  state.counters["probes"] = static_cast<double>(probes.size());
}

void BM_NextGatheringBatch(benchmark::State& state, const std::string& scenario,
                           std::size_t probes_n) {
  Fleet& fleet = fleet_for(scenario);
  workload::ProbeRound round = fleet.generator.probes(*fleet.snapshot, probes_n);
  std::uint64_t sum = 0;
  for (auto _ : state) {
    const std::vector<std::uint64_t> out =
        fleet.engine->next_gathering_batch(round.next_gathering);
    for (const std::uint64_t t : out) {
      sum += t;
    }
  }
  benchmark::DoNotOptimize(sum);
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * round.next_gathering.size()));
}

/// Family sweep: a mid-size fleet per structured family.  Fully periodic
/// tenancies (aperiodic=0) keep the three strategies comparable — the
/// aperiodic replay path is covered by the engine tests and E17.
const char* kFamilySweep[] = {
    "ring:fleet=2000,nodes=48,aperiodic=0,horizon=1024",
    "grid:fleet=2000,nodes=48,aperiodic=0,horizon=1024",
    "power-law:fleet=2000,nodes=48,aperiodic=0,horizon=1024",
    "random-geometric:fleet=2000,nodes=48,aperiodic=0,horizon=1024",
};

/// Acceptance configuration: 10k instances, 64k probes per batch.
const char* kAcceptance = "power-law:fleet=10000,nodes=48,aperiodic=0,horizon=1024";
constexpr std::size_t kAcceptanceProbes = 65536;

void register_all() {
  for (const char* scenario : kFamilySweep) {
    const auto spec = workload::parse_scenario(scenario);
    const std::string family = workload::graph_family_name(spec->family);
    benchmark::RegisterBenchmark(("batch/" + family).c_str(),
                                 [scenario](benchmark::State& s) { BM_QueryBatch(s, scenario, 16384); });
    benchmark::RegisterBenchmark(("single-handle/" + family).c_str(), [scenario](benchmark::State& s) {
      BM_QuerySingleHandle(s, scenario, 16384);
    });
    benchmark::RegisterBenchmark(("single-name/" + family).c_str(), [scenario](benchmark::State& s) {
      BM_QuerySingleName(s, scenario, 16384);
    });
    benchmark::RegisterBenchmark(("next-batch/" + family).c_str(), [scenario](benchmark::State& s) {
      BM_NextGatheringBatch(s, scenario, 16384);
    });
  }
  benchmark::RegisterBenchmark("batch/acceptance-10k-64k", [](benchmark::State& s) {
    BM_QueryBatch(s, kAcceptance, kAcceptanceProbes);
  });
  benchmark::RegisterBenchmark("single-name/acceptance-10k-64k", [](benchmark::State& s) {
    BM_QuerySingleName(s, kAcceptance, kAcceptanceProbes);
  });
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
