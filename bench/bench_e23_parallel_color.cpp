// E23 — parallel speculative coloring: Jones–Plassmann vs serial greedy
// (google-benchmark; emits machine-readable JSON for the CI perf gate).
//
// Three ways to build the initial coloring of one million-node tenant, over
// the `fhg::workload` presets `powerlaw-1m` (Barabási–Albert, heavy-tailed
// hubs) and `geometric-1m` (random-geometric, clustered):
//
//   serial-greedy — `coloring::greedy_color` largest-first, the pre-crossover
//                   baseline every small instance still uses;
//   serial-jp     — the Jones–Plassmann rounds on a 1-worker pool: the same
//                   propose/resolve/commit work as the parallel run, minus
//                   the parallelism.  The parallel8/serial-jp ratio is the
//                   pure speedup of running the rounds on 8 workers;
//   parallel8     — the same rounds on an 8-worker pool.
//
// Determinism is asserted at startup (1-worker and 8-worker colorings of a
// small power-law graph must be identical), so a run that would publish
// numbers for a nondeterministic kernel aborts instead.  The CI gate
// requires parallel8/powerlaw-1m >= 3x serial-jp/powerlaw-1m
// (tools/check_bench.py --ratio-num/--ratio-den/--min-ratio); the checked-in
// baseline gates regressions on every entry.  Rate = nodes colored per
// second; `jp_rounds` / `jp_conflicts` ride along as counters.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>

#include "fhg/coloring/coloring.hpp"
#include "fhg/coloring/greedy.hpp"
#include "fhg/coloring/parallel_jp.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/graph/graph.hpp"
#include "fhg/parallel/thread_pool.hpp"
#include "fhg/workload/scenario.hpp"

namespace {

using namespace fhg;

/// The preset graphs, built once and shared across benchmarks (a 2^20-node
/// Barabási–Albert build costs seconds; pay it once per process).
const graph::Graph& preset_graph(const std::string& scenario) {
  static std::map<std::string, std::unique_ptr<graph::Graph>> cache;
  auto& slot = cache[scenario];
  if (!slot) {
    const auto spec = workload::parse_scenario(scenario);
    if (!spec) {
      throw std::invalid_argument("bench_e23: bad scenario '" + scenario + "'");
    }
    slot = std::make_unique<graph::Graph>(workload::ScenarioGenerator(*spec).tenant(0).graph);
  }
  return *slot;
}

void BM_SerialGreedy(benchmark::State& state, const std::string& scenario) {
  const graph::Graph& g = preset_graph(scenario);
  std::uint64_t colored = 0;
  for (auto _ : state) {
    const coloring::Coloring colors = coloring::greedy_color(g, coloring::Order::kLargestFirst);
    benchmark::DoNotOptimize(colors.max_color());
    colored += g.num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(colored));
}

void BM_JonesPlassmann(benchmark::State& state, const std::string& scenario,
                       std::size_t workers) {
  const graph::Graph& g = preset_graph(scenario);
  parallel::ThreadPool pool(workers);
  coloring::JpOptions options;
  options.pool = &pool;
  coloring::JpStats stats;
  std::uint64_t colored = 0;
  for (auto _ : state) {
    const coloring::Coloring colors = coloring::parallel_jp_color(g, options, &stats);
    benchmark::DoNotOptimize(colors.max_color());
    colored += g.num_nodes();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(colored));
  state.counters["jp_rounds"] = static_cast<double>(stats.rounds);
  state.counters["jp_conflicts"] = static_cast<double>(stats.conflicts);
}

/// Thread-count independence, checked before any number is published: the
/// whole point of the seeded-priority design is that 1 worker and 8 workers
/// land on the identical coloring.
void assert_deterministic() {
  const graph::Graph g = graph::barabasi_albert(4096, 3, 7);
  parallel::ThreadPool one(1);
  parallel::ThreadPool eight(8);
  coloring::JpOptions options;
  options.pool = &one;
  const coloring::Coloring serial = coloring::parallel_jp_color(g, options);
  options.pool = &eight;
  const coloring::Coloring parallel = coloring::parallel_jp_color(g, options);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    if (serial.color(v) != parallel.color(v)) {
      std::fprintf(stderr,
                   "bench_e23: Jones-Plassmann coloring depends on the worker count "
                   "(node %u: 1-worker color %u vs 8-worker color %u) - refusing to "
                   "publish numbers for a nondeterministic kernel\n",
                   static_cast<unsigned>(v), static_cast<unsigned>(serial.color(v)),
                   static_cast<unsigned>(parallel.color(v)));
      std::abort();
    }
  }
}

/// The full-size presets plus 128k variants (quick local runs; CI gates the
/// 1m pair).
const char* kScenarios[] = {
    "powerlaw-1m",
    "geometric-1m",
    "powerlaw-1m:nodes=131072",
    "geometric-1m:nodes=131072",
};

std::string label_of(const char* scenario) {
  const std::string text(scenario);
  const auto colon = text.find(':');
  return colon == std::string::npos ? text
                                    : text.substr(0, text.find('-')) + "-128k";
}

void register_all() {
  // Wall-clock rates: the parallel variants do their work on pool threads,
  // so the default CPU-time rate would measure the idle main thread and
  // fabricate a speedup.  Real time is what the ratio gate must compare.
  for (const char* scenario : kScenarios) {
    const std::string label = label_of(scenario);
    benchmark::RegisterBenchmark(("serial-greedy/" + label).c_str(),
                                 [scenario](benchmark::State& s) {
                                   BM_SerialGreedy(s, scenario);
                                 })
        ->UseRealTime();
    benchmark::RegisterBenchmark(("serial-jp/" + label).c_str(),
                                 [scenario](benchmark::State& s) {
                                   BM_JonesPlassmann(s, scenario, 1);
                                 })
        ->UseRealTime();
    benchmark::RegisterBenchmark(("parallel8/" + label).c_str(),
                                 [scenario](benchmark::State& s) {
                                   BM_JonesPlassmann(s, scenario, 8);
                                 })
        ->UseRealTime();
  }
}

}  // namespace

int main(int argc, char** argv) {
  assert_deterministic();
  register_all();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
