// E5 — Lemma 5.1 / Theorem 5.3: the residue assignment gives every node of
// degree d a perfectly periodic schedule with period 2^⌈log(d+1)⌉ ≤ 2d, and
// adjacent nodes never host together.
//
// Regenerates:
//   (a) per-degree table: period vs the 2d bound vs the non-periodic d+1
//       reference (the conjectured periodicity price, ≤ 2×);
//   (b) the Lemma 5.1 conflict audit across graph families;
//   (c) the §6 ordering ablation: increasing-degree order + random residue
//       picks must run out of residues (the documented failure).

#include <iostream>

#include "bench_common.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"

int main() {
  using namespace fhg;
  bench::banner("E5", "Lemma 5.1 + Theorem 5.3, Section 5.1",
                "Degree-bound scheduler: period = 2^ceil(log(d+1)) <= 2d, no conflicts");

  analysis::Table table({"family", "degree", "nodes", "period (max)", "bound 2d", "ratio to d+1",
                         "audit"});
  bool all_ok = true;
  for (const auto& workload : bench::standard_workloads(2000, 21)) {
    const graph::Graph& g = workload.graph;
    core::DegreeBoundScheduler scheduler(g);
    std::uint64_t horizon = 16;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      horizon = std::max(horizon, 2 * scheduler.period_of(v).value());
    }
    const auto report = core::run_schedule(scheduler, {.horizon = horizon});
    all_ok = all_ok && report.independence_ok && report.bounds_respected;

    std::vector<std::uint64_t> buckets;
    std::vector<double> periods;
    std::vector<double> ratios;  // period / (d+1): the periodicity price
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      buckets.push_back(bench::degree_bucket(g.degree(v)));
      const double period = static_cast<double>(scheduler.period_of(v).value());
      periods.push_back(period);
      ratios.push_back(period / (g.degree(v) + 1.0));
    }
    const auto period_rows = analysis::group_stats(buckets, periods);
    const auto ratio_rows = analysis::group_stats(buckets, ratios);
    for (std::size_t i = 0; i < period_rows.size(); ++i) {
      const auto& row = period_rows[i];
      table.row()
          .add(workload.name)
          .add(row.key)
          .add(static_cast<std::uint64_t>(row.count))
          .add(static_cast<std::uint64_t>(row.max))
          .add(row.key == 0 ? 1 : 2 * row.key)
          .add(ratio_rows[i].max, 2)
          .add(report.independence_ok && report.bounds_respected);
    }
  }
  table.print(std::cout);
  std::cout << (all_ok ? "RESULT: PASS — periods exact, conflicts zero, period <= 2d\n"
                       : "RESULT: FAIL\n");

  // (c) Ordering ablation (§6): low-degree-first + random picks exhausts the
  // hub's residues on stars; count failures over seeds.
  bench::banner("E5-ablation", "Section 6 (why dynamics break §5)",
                "Increasing-degree order + random picks: residue exhaustion rate");
  analysis::Table ablation({"graph", "order", "seeds", "failures", "failure rate"});
  for (const auto& [name, g] : std::vector<std::pair<std::string, graph::Graph>>{
           {"star-33", graph::star(33)}, {"ba-200", graph::barabasi_albert(200, 3, 5)}}) {
    for (const bool decreasing : {true, false}) {
      std::vector<graph::NodeId> order = core::degree_bound_order(g);
      if (!decreasing) {
        std::reverse(order.begin(), order.end());
      }
      constexpr std::uint64_t kSeeds = 64;
      std::uint64_t failures = 0;
      for (std::uint64_t seed = 0; seed < kSeeds; ++seed) {
        try {
          const auto slots = core::assign_degree_bound_slots(
              g, order, core::ResiduePick::kRandomFree, seed);
          if (!core::slots_conflict_free(g, slots)) {
            ++failures;  // would be a soundness bug; counted separately
          }
        } catch (const std::runtime_error&) {
          ++failures;
        }
      }
      ablation.row()
          .add(name)
          .add(decreasing ? "decreasing (paper)" : "increasing (ablated)")
          .add(kSeeds)
          .add(failures)
          .add(static_cast<double>(failures) / kSeeds, 3);
    }
  }
  ablation.print(std::cout);
  std::cout << "RESULT: the paper's decreasing-degree order never fails; the ablated order\n"
               "collapses — this is why §5 has no easy dynamic version (open problem).\n";
  return all_ok ? 0 : 1;
}
