// E9 — Appendix A.1: maximizing single-holiday happiness is Maximum
// Independent Set, which is MAXSNP-hard; exact solvers hit an exponential
// wall while greedy stays linear (with a Caro–Wei quality floor).
//
// Regenerates: exact-MIS wall-clock vs n (google-benchmark), branch counts
// showing the exponential search tree, and the greedy quality ratio.

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "fhg/graph/generators.hpp"
#include "fhg/mis/exact.hpp"
#include "fhg/mis/greedy.hpp"

namespace {

using namespace fhg;

void BM_ExactMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 0.35, 11);
  std::uint64_t branches = 0;
  for (auto _ : state) {
    const auto result = mis::exact_mis(g);
    branches = result->branch_count;
    benchmark::DoNotOptimize(result->independent_set.data());
  }
  state.counters["branches"] = static_cast<double>(branches);
}
BENCHMARK(BM_ExactMis)->DenseRange(30, 90, 15)->Unit(benchmark::kMillisecond);

void BM_GreedyMis(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const graph::Graph g = graph::gnp(n, 0.35, 11);
  for (auto _ : state) {
    const auto result = mis::greedy_mis(g);
    benchmark::DoNotOptimize(result.data());
  }
}
BENCHMARK(BM_GreedyMis)->DenseRange(30, 90, 15)->Unit(benchmark::kMillisecond);

void print_quality_table() {
  bench::banner("E9", "Appendix A.1 (hardness of happiness)",
                "Exact MIS: exponential branch growth; greedy quality ratio");
  analysis::Table table({"n", "exact MIS", "branches", "greedy MIS", "ratio", "Caro-Wei floor"});
  for (const graph::NodeId n : {30U, 45U, 60U, 75U, 90U}) {
    const graph::Graph g = graph::gnp(n, 0.35, 11);
    const auto exact = mis::exact_mis(g);
    const auto greedy = mis::greedy_mis(g);
    table.row()
        .add(std::uint64_t{n})
        .add(static_cast<std::uint64_t>(exact->independent_set.size()))
        .add(exact->branch_count)
        .add(static_cast<std::uint64_t>(greedy.size()))
        .add(static_cast<double>(greedy.size()) /
                 static_cast<double>(exact->independent_set.size()),
             3)
        .add(mis::caro_wei_bound(g), 2);
  }
  table.print(std::cout);
  std::cout << "RESULT: branch counts grow exponentially with n (the Appendix A wall);\n"
               "greedy stays near-optimal on these densities at linear cost.\n";
}

}  // namespace

int main(int argc, char** argv) {
  print_quality_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
