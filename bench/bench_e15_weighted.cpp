// E15 (extension) — weighted perfectly-periodic scheduling: §5's residue
// machinery generalized to user-chosen demand rates (the proportional-share
// scheduling the paper's related work points at).
//
// Regenerates:
//   (a) demand honoring vs load: sweep the fraction of "gold" (period-4)
//       nodes on a fixed graph; report how many requests are granted
//       verbatim vs relaxed as the load crosses 1 — the feasibility cliff;
//   (b) §5 as the special case: degree-derived demands reproduce the
//       degree-bound scheduler's periods exactly;
//   (c) audit: conflict-freedom and exact periodicity at every point.

#include <iostream>

#include "bench_common.hpp"
#include "fhg/coding/iterated_log.hpp"
#include "fhg/core/degree_bound.hpp"
#include "fhg/core/driver.hpp"
#include "fhg/core/weighted.hpp"
#include "fhg/parallel/rng.hpp"

int main() {
  using namespace fhg;
  bench::banner("E15", "extension (weighted periodic scheduling; cf. paper §1.3 related work)",
                "Demand-driven periods on the §5 machinery: feasibility cliff and audits");

  // (a) gold-fraction sweep: gold = period 2, i.e. half of all holidays.
  // Two adjacent golds on an odd structure cannot both be honored, so the
  // relaxation rate climbs with the gold fraction — the feasibility cliff.
  const graph::Graph g = graph::gnp(400, 0.02, 7);
  analysis::Table sweep({"gold fraction", "max load", "granted verbatim", "relaxed",
                         "gold mean granted", "audit"});
  for (const double gold_fraction : {0.05, 0.15, 0.30, 0.50, 0.80}) {
    parallel::Rng rng(42);
    std::vector<std::uint64_t> demand(g.num_nodes());
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      demand[v] = rng.uniform_real() < gold_fraction ? 2 : 32;
    }
    const auto loads = analysis::summarize(core::schedule_load(g, demand));
    core::WeightedPeriodicScheduler scheduler(g, demand);
    const auto report = core::run_schedule(scheduler, {.horizon = 512});

    std::uint64_t verbatim = 0;
    std::uint64_t gold_count = 0;
    double gold_granted = 0;
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      if (scheduler.period_of(v).value() == core::round_period_up(demand[v])) {
        ++verbatim;
      }
      if (demand[v] == 2) {
        ++gold_count;
        gold_granted += static_cast<double>(scheduler.period_of(v).value());
      }
    }
    sweep.row()
        .add(gold_fraction, 2)
        .add(loads.max, 2)
        .add(verbatim)
        .add(static_cast<std::uint64_t>(scheduler.assignment().relaxed.size()))
        .add(gold_count == 0 ? 0.0 : gold_granted / static_cast<double>(gold_count), 1)
        .add(report.independence_ok && report.bounds_respected);
  }
  sweep.print(std::cout);
  std::cout << "The feasibility cliff: while loads stay <= 1 every demand is granted\n"
               "verbatim; past it the scheduler degrades gracefully by doubling the\n"
               "over-subscribed periods (never by conflicting).\n";

  // (b) §5 as a special case.
  analysis::Table special({"family", "nodes", "periods match degree-bound", "conflict-free"});
  for (const auto& workload : bench::standard_workloads(1200, 15)) {
    const graph::Graph& graph = workload.graph;
    std::vector<std::uint64_t> demand(graph.num_nodes());
    for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
      demand[v] = std::uint64_t{1} << coding::ceil_log2(graph.degree(v) + 1);
    }
    core::WeightedPeriodicScheduler weighted(graph, demand, core::WeightedPolicy::kStrict);
    core::DegreeBoundScheduler reference(graph);
    bool match = true;
    for (graph::NodeId v = 0; v < graph.num_nodes(); ++v) {
      match = match && weighted.period_of(v) == reference.period_of(v);
    }
    special.row()
        .add(workload.name)
        .add(std::uint64_t{graph.num_nodes()})
        .add(match)
        .add(core::slots_conflict_free(graph, weighted.assignment().slots));
  }
  std::cout << "\n§5 recovered as the degree-derived special case:\n";
  special.print(std::cout);
  return 0;
}
